//! Batched vs. sequential multi-query execution.
//!
//! The lane executor's reason to exist: a server answering N queries
//! over one document should not pay N full passes. Two workloads on a
//! ~10k-node xmlgen document, each run two ways:
//!
//! * `sequential`: `queries.iter().map(|q| q.run(engine))` — one pass
//!   per query per step, the pre-batching behaviour;
//! * `run_many`:   `session.run_many(&queries, engine)` — lanes grouped
//!   by planned operator share passes.
//!
//! The `vertical` workload (the paper's Q1/Q2 plus six probes) exercises
//! the multi-context staircase join that landed first. The `mixed`
//! workload is the shape that used to fall back to per-lane
//! interpretation — predicates, fragment (on-list) joins, horizontal
//! axes — and now batches through the fragment/horiz/semijoin lane
//! rounds (acceptance target: ≥ 1.3× over the per-query loop, where the
//! fallback managed only ≈ 1.0×).
//!
//! Besides the timings, the bench prints measured speedups and
//! touched-node totals, making the "one pass per shared step" claim
//! visible.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use staircase_bench::{Workload, BATCH_MIXED as MIXED, BATCH_VERTICAL as VERTICAL};
use staircase_core::Variant;
use staircase_xpath::{Engine, Query, Session};

/// Interleaved best-of-N speedup measurement, robust against CPU
/// frequency drift between the two loops; prints the shared-pass
/// accounting behind the speedup.
fn report_speedup(label: &str, session: &Session, queries: &[Query<'_>], engine: Engine) -> f64 {
    let refs: Vec<&Query> = queries.iter().collect();
    let reps = if criterion::is_test_mode() { 1 } else { 200 };
    let (mut seq, mut many) = (f64::MAX, f64::MAX);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(queries.iter().map(|q| q.run(engine)).collect::<Vec<_>>());
        seq = seq.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(session.run_many(&refs, engine));
        many = many.min(t.elapsed().as_secs_f64());
    }
    let seq_touched: u64 = queries
        .iter()
        .map(|q| q.run(engine).stats().total_touched())
        .sum();
    let batch_touched: u64 = session
        .run_many(&refs, engine)
        .iter()
        .map(|o| o.stats().total_touched())
        .sum();
    println!(
        "{label}: run_many speedup {:.2}x  (sequential {:.3} ms, batched {:.3} ms); \
         nodes touched {} -> {} ({:.1}% of sequential)",
        seq / many,
        seq * 1e3,
        many * 1e3,
        seq_touched,
        batch_touched,
        100.0 * batch_touched as f64 / seq_touched.max(1) as f64,
    );
    seq / many
}

fn bench(c: &mut Criterion) {
    // Scale 0.2 ≈ 10k nodes (printed below for the record).
    let w = Workload::generate(0.2);
    let session = w.session();
    println!(
        "document: scale {}, {} nodes, height {}",
        w.scale,
        w.doc().len(),
        w.doc().height()
    );

    // Vertical workload: the multi-context staircase join.
    let queries: Vec<Query> = VERTICAL
        .iter()
        .map(|q| session.prepare(q).expect("vertical query parses"))
        .collect();
    let refs: Vec<&Query> = queries.iter().collect();
    for variant in [Variant::Skipping, Variant::EstimationSkipping] {
        let engine = Engine::staircase().variant(variant).build().unwrap();
        let mut g = c.benchmark_group(format!("batch_throughput_{variant:?}"));
        g.sample_size(30);
        g.throughput(Throughput::Elements((queries.len() * w.doc().len()) as u64));
        g.bench_function("sequential", |b| {
            b.iter(|| queries.iter().map(|q| q.run(engine)).collect::<Vec<_>>())
        });
        g.bench_function("run_many", |b| b.iter(|| session.run_many(&refs, engine)));
        g.finish();
        report_speedup(&format!("vertical/{variant:?}"), session, &queries, engine);
    }

    // Mixed workload: predicates, fragment joins, horizontal axes — the
    // lane rounds that used to be the per-query fallback.
    let mixed: Vec<Query> = MIXED
        .iter()
        .map(|q| session.prepare(q).expect("mixed query parses"))
        .collect();
    let mixed_refs: Vec<&Query> = mixed.iter().collect();
    for (ename, engine) in [
        (
            "fragmented",
            Engine::staircase().fragmented(true).build().unwrap(),
        ),
        (
            "pushdown",
            Engine::staircase().pushdown(true).build().unwrap(),
        ),
        ("auto", Engine::auto()),
    ] {
        session.warm();
        let mut g = c.benchmark_group(format!("batch_throughput_mixed_{ename}"));
        g.sample_size(30);
        g.throughput(Throughput::Elements((mixed.len() * w.doc().len()) as u64));
        g.bench_function("sequential", |b| {
            b.iter(|| mixed.iter().map(|q| q.run(engine)).collect::<Vec<_>>())
        });
        g.bench_function("run_many", |b| {
            b.iter(|| session.run_many(&mixed_refs, engine))
        });
        g.finish();
        report_speedup(&format!("mixed/{ename}"), session, &mixed, engine);
    }

    // Pool-width sweep: the same mixed workload on sessions whose worker
    // pool has 1, 2, and 4 executors. Touched-node totals are
    // width-independent by construction (morsels change who reads a
    // position, never whether it is read); wall-clock scaling depends on
    // the host's core count — the JSON-emitting `bench_batch_throughput`
    // binary records both for the perf trajectory.
    for width in [1usize, 2, 4] {
        let w = Workload::generate_with_threads(0.2, width);
        let session = w.session();
        session.warm();
        let queries: Vec<Query> = MIXED
            .iter()
            .map(|q| session.prepare(q).expect("mixed query parses"))
            .collect();
        let refs: Vec<&Query> = queries.iter().collect();
        let mut g = c.benchmark_group(format!("batch_throughput_mixed_width{width}"));
        g.sample_size(30);
        g.throughput(Throughput::Elements((queries.len() * w.doc().len()) as u64));
        g.bench_function("run_many_auto", |b| {
            b.iter(|| session.run_many(&refs, Engine::auto()))
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
