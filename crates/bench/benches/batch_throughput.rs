//! Batched vs. sequential multi-query execution.
//!
//! The batch layer's reason to exist: a server answering N queries over
//! one document should not pay N full plane passes. This bench runs the
//! same mixed batch of descendant/ancestor queries (the paper's Q1/Q2
//! plus six probes of the XMark vocabulary) two ways on a ~10k-node
//! xmlgen document:
//!
//! * `sequential`: `queries.iter().map(|q| q.run(engine))` — one plane
//!   pass per query per step, the pre-batching behaviour;
//! * `run_many`:   `session.run_many(&queries, engine)` — aligned steps
//!   share one pass via the multi-context staircase join.
//!
//! Besides the timings, the bench prints the measured speedup and the
//! touched-node totals, making the "one pass per shared step" claim
//! visible (the acceptance target is ≥ 1.3× on this workload).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use staircase_bench::{Workload, QUERY_Q1, QUERY_Q2};
use staircase_core::Variant;
use staircase_xpath::{Engine, Query};

/// Eight descendant/ancestor queries sharing plenty of plane regions —
/// every first step starts at the root.
const BATCH: [&str; 8] = [
    QUERY_Q1,
    QUERY_Q2,
    "/descendant::bidder",
    "/descendant::date/ancestor::open_auction",
    "/descendant::person",
    "/descendant::increase",
    "/descendant::open_auction/descendant::date",
    "/descendant::education/ancestor::person",
];

fn bench(c: &mut Criterion) {
    // Scale 0.2 ≈ 10k nodes (printed below for the record).
    let w = Workload::generate(0.2);
    let session = w.session();
    println!(
        "document: scale {}, {} nodes, height {}",
        w.scale,
        w.doc().len(),
        w.doc().height()
    );
    let queries: Vec<Query> = BATCH
        .iter()
        .map(|q| session.prepare(q).expect("batch query parses"))
        .collect();
    let refs: Vec<&Query> = queries.iter().collect();

    for variant in [Variant::Skipping, Variant::EstimationSkipping] {
        let engine = Engine::staircase().variant(variant).build().unwrap();
        let mut g = c.benchmark_group(format!("batch_throughput_{variant:?}"));
        g.sample_size(30);
        g.throughput(Throughput::Elements((queries.len() * w.doc().len()) as u64));
        g.bench_function("sequential", |b| {
            b.iter(|| queries.iter().map(|q| q.run(engine)).collect::<Vec<_>>())
        });
        g.bench_function("run_many", |b| b.iter(|| session.run_many(&refs, engine)));
        g.finish();

        // Direct speedup measurement: interleaved best-of-N, robust
        // against CPU frequency drift between the two loops, plus the
        // shared-pass accounting behind the speedup.
        let reps = 200;
        let (mut seq, mut many) = (f64::MAX, f64::MAX);
        for _ in 0..reps {
            let t = Instant::now();
            std::hint::black_box(queries.iter().map(|q| q.run(engine)).collect::<Vec<_>>());
            seq = seq.min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            std::hint::black_box(session.run_many(&refs, engine));
            many = many.min(t.elapsed().as_secs_f64());
        }
        let seq_touched: u64 = queries
            .iter()
            .map(|q| q.run(engine).stats().total_touched())
            .sum();
        let batch_touched: u64 = session
            .run_many(&refs, engine)
            .iter()
            .map(|o| o.stats().total_touched())
            .sum();
        println!(
            "{variant:?}: run_many speedup {:.2}x  (sequential {:.3} ms, batched {:.3} ms); \
             nodes touched {} -> {} ({:.1}% of sequential)",
            seq / many,
            seq * 1e3,
            many * 1e3,
            seq_touched,
            batch_touched,
            100.0 * batch_touched as f64 / seq_touched as f64,
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
