//! Figures 11(e)/(f): staircase join (late and early name test) versus the
//! tree-unaware SQL plan, on Q1 and Q2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use staircase_bench::{Workload, QUERY_Q1, QUERY_Q2};
use staircase_core::Variant;
use staircase_xpath::{Engine, Evaluator};

fn bench(c: &mut Criterion) {
    let w = Workload::generate(2.0);
    let engines: [(&str, Engine); 3] = [
        (
            "staircase",
            Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: false },
        ),
        (
            "scj_early_nametest",
            Engine::Staircase { variant: Variant::EstimationSkipping, pushdown: true },
        ),
        ("sql_plan", Engine::Sql { eq1_window: true, early_nametest: true }),
    ];

    let mut g = c.benchmark_group("fig11e_q1");
    g.sample_size(10);
    for (name, engine) in engines {
        let eval = Evaluator::new(&w.doc, engine);
        g.bench_with_input(BenchmarkId::from_parameter(name), &eval, |b, eval| {
            b.iter(|| eval.evaluate(QUERY_Q1).unwrap())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig11f_q2");
    g.sample_size(10);
    for (name, engine) in engines {
        let eval = Evaluator::new(&w.doc, engine);
        // Like the paper, the SQL engine gets the manual rewrite for Q2.
        let query = if name == "sql_plan" {
            "/descendant::bidder[descendant::increase]"
        } else {
            QUERY_Q2
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &eval, |b, eval| {
            b.iter(|| eval.evaluate(query).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
