//! Figures 11(e)/(f): staircase join (late and early name test) versus the
//! tree-unaware SQL plan, on Q1 and Q2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use staircase_bench::{Workload, QUERY_Q1, QUERY_Q2};
use staircase_xpath::Engine;

fn bench(c: &mut Criterion) {
    let w = Workload::generate(2.0);
    let engines: [(&str, Engine); 3] = [
        ("staircase", Engine::default()),
        (
            "scj_early_nametest",
            Engine::staircase()
                .pushdown(true)
                .build()
                .expect("valid engine config"),
        ),
        (
            "sql_plan",
            Engine::sql()
                .eq1_window(true)
                .early_nametest(true)
                .build()
                .expect("valid config"),
        ),
    ];

    // The SQL B-tree is "document loading time" work: build it before
    // any measured region so all three engines are timed consistently.
    w.session().sql_engine();

    let mut g = c.benchmark_group("fig11e_q1");
    g.sample_size(10);
    let q1 = w.session().prepare(QUERY_Q1).expect("Q1 parses");
    for (name, engine) in engines {
        g.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, &engine| {
            b.iter(|| q1.run(engine))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig11f_q2");
    g.sample_size(10);
    let q2 = w.session().prepare(QUERY_Q2).expect("Q2 parses");
    // Like the paper, the SQL engine gets the manual rewrite for Q2.
    let q2_rewrite = w
        .session()
        .prepare("/descendant::bidder[descendant::increase]")
        .expect("rewrite parses");
    for (name, engine) in engines {
        let query = if name == "sql_plan" { &q2_rewrite } else { &q2 };
        g.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, &engine| {
            b.iter(|| query.run(engine))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
