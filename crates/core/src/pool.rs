//! The persistent worker pool behind every parallel staircase operator.
//!
//! §3.2 observes that the pruned context's disjoint pre-range partitions
//! "naturally lead to a parallel XPath execution strategy"; morsel-driven
//! schedulers (Leis et al., SIGMOD 2014) turn that observation into an
//! execution backbone: a fixed set of workers, built **once**, pulling
//! small self-contained work items from a shared queue. [`WorkerPool`]
//! is that backbone for this repository — the session layer builds one
//! per document session and reuses it for every query and batch, instead
//! of paying a `std::thread::scope` spawn/join per call the way the old
//! standalone parallel engine did.
//!
//! Design points:
//!
//! * **Width `w` means `w` executors**: the pool spawns `w − 1` threads
//!   and the *calling* thread participates in draining the queue while it
//!   waits, so `WorkerPool::new(1)` spawns nothing and [`WorkerPool::run`]
//!   degenerates to a plain sequential loop — a width-1 session is the
//!   pre-pool executor, not a pool with handoff overhead.
//! * **Borrow-friendly jobs**: `run` accepts closures borrowing the
//!   caller's stack (documents, lanes, scratch buffers). It does not
//!   return until every job has finished, which is what makes the
//!   lifetime erasure underneath sound.
//! * **Nesting**: a job may itself call `run` on the same pool (a group
//!   round fanning a kernel out into morsels). The nested caller drains
//!   the shared queue while waiting, so progress is always possible and
//!   the pool cannot deadlock on its own tasks.
//! * **Panics propagate — or are caught**: a panicking job poisons
//!   nothing; [`WorkerPool::run`] re-raises the first payload on the
//!   calling thread after the whole batch has drained, while
//!   [`WorkerPool::run_caught`] returns per-job
//!   [`std::thread::Result`]s so a caller can fail one job's query and
//!   keep the rest.
//! * **Governance propagates**: both entry points capture the
//!   submitting thread's ambient [`crate::governor::Budget`] and
//!   install it around every job, so governed kernels keep ticking
//!   inside workers.
//!
//! [`ScratchPool`] is the companion buffer-pool shard set: one
//! [`Scratch`] per slot, handed out by a `try_lock` sweep so concurrent
//! queries and parallel group rounds stop fighting over (or worse,
//! bypassing) a single session-wide pool.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::batch::Scratch;

/// A type-erased work item; lifetime-erased by [`WorkerPool::run`],
/// which guarantees the job finishes before the borrowed data can die.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool's owner and its worker threads.
struct Shared {
    /// Pending jobs plus the shutdown flag, under **one** mutex — the
    /// flag must be checked under the same lock the condvar waits on,
    /// or `Drop`'s notification could slip between a worker's check and
    /// its wait (a lost wakeup that would hang the join).
    queue: Mutex<PoolState>,
    /// Signalled when a job is pushed or the pool shuts down.
    work: Condvar,
}

/// The queue-mutex payload: pending jobs and the shutdown flag.
struct PoolState {
    /// Pending jobs; workers and waiting callers pop from the front.
    jobs: VecDeque<Job>,
    /// Set once by `Drop`; workers exit when the queue drains.
    shutdown: bool,
}

/// Completion tracking for one `run` batch.
struct Batch {
    /// Jobs not yet finished.
    remaining: Mutex<usize>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
}

/// A persistent pool of worker threads executing borrowed closures.
///
/// Built once (the session layer owns one per document session) and
/// reused across queries; see the module docs above for the design.
///
/// ```
/// use staircase_core::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
/// let sums = pool.run(
///     data.chunks(2)
///         .map(|c| move || c.iter().sum::<u64>())
///         .collect(),
/// );
/// assert_eq!(sums, [3, 7, 11, 15]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    width: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width)
            .finish()
    }
}

impl WorkerPool {
    /// Builds a pool of `width` executors: `width − 1` persistent worker
    /// threads plus the calling thread of every [`WorkerPool::run`].
    /// A width of 0 is treated as 1 (purely sequential, no threads).
    pub fn new(width: usize) -> WorkerPool {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let handles = (1..width)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            width,
        }
    }

    /// Number of executors (worker threads + the participating caller).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Runs every job to completion and returns their results in input
    /// order. Jobs may borrow from the caller's stack: `run` blocks until
    /// the whole batch has finished. Jobs run concurrently on up to
    /// [`WorkerPool::width`] executors (the caller included); with width
    /// 1 — or a batch of one — this is a plain sequential loop.
    ///
    /// # Panics
    ///
    /// Re-raises the first (in input order) panic any job of the batch
    /// raised, after all jobs have drained. Callers that must survive a
    /// panicking job use [`WorkerPool::run_caught`] instead.
    pub fn run<'env, T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let mut out = Vec::with_capacity(jobs.len());
        for result in self.run_caught(jobs) {
            match result {
                Ok(value) => out.push(value),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }

    /// Like [`WorkerPool::run`], but panic-isolating: each job's outcome
    /// comes back as a [`std::thread::Result`], a panicking job
    /// surrendering its payload in place instead of unwinding through
    /// the caller. The whole batch always drains — one bad job cannot
    /// starve the others — and the pool stays fully reusable afterwards.
    ///
    /// Every job additionally inherits the *submitting* thread's ambient
    /// [`crate::governor::Budget`] (if any): the budget is captured here
    /// and installed around the job body wherever it runs, so governed
    /// kernels keep ticking inside pool workers.
    pub fn run_caught<'env, T, F>(&self, jobs: Vec<F>) -> Vec<std::thread::Result<T>>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let ambient = crate::governor::current();
        let govern = |job: F| {
            let ambient = ambient.clone();
            move || {
                crate::faults::fail_point("core::pool::task");
                let _guard = ambient.map(crate::governor::enter);
                job()
            }
        };
        if self.width == 1 || jobs.len() <= 1 {
            // Sequential fast path: still catching, still governed, so
            // the isolation contract does not depend on pool width.
            return jobs
                .into_iter()
                .map(|job| std::panic::catch_unwind(AssertUnwindSafe(govern(job))))
                .collect();
        }

        let n = jobs.len();
        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
        let batch = Arc::new(Batch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });

        {
            // Wrap each job to write its slot and tick the batch. The
            // slot pointers are disjoint and outlive the batch (we wait
            // below), so handing them across threads is sound.
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            for (slot, job) in slots.iter_mut().zip(jobs) {
                let slot = SlotPtr(slot as *mut Option<std::thread::Result<T>>);
                let batch = Arc::clone(&batch);
                let job = govern(job);
                let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let slot = slot;
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(job));
                    // SAFETY: each wrapped job owns a distinct slot of
                    // `slots`, which `run_caught` keeps alive until the
                    // batch completes below.
                    unsafe { *slot.0 = Some(outcome) };
                    let mut remaining = batch.remaining.lock().unwrap_or_else(|e| e.into_inner());
                    *remaining -= 1;
                    if *remaining == 0 {
                        batch.done.notify_all();
                    }
                });
                // SAFETY: `run_caught` does not return before `remaining`
                // hits zero, i.e. before every queued task has finished
                // running — nothing the closure borrows can be dropped
                // while the erased lifetime is live.
                let task: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(task) };
                queue.jobs.push_back(task);
            }
            // The caller takes one task itself; wake at most enough
            // workers to cover the rest (a full notify_all would stampede
            // idle workers at every small batch).
            for _ in 0..(n - 1).min(self.width - 1) {
                self.shared.work.notify_one();
            }
        }

        // Participate: drain the queue alongside the workers, then wait
        // for the stragglers other executors are still running.
        loop {
            let task = {
                let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                queue.jobs.pop_front()
            };
            match task {
                Some(task) => task(),
                None => break,
            }
        }
        let mut remaining = batch.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *remaining > 0 {
            remaining = batch
                .done
                .wait(remaining)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(remaining);

        slots
            .into_iter()
            .map(|slot| slot.expect("every completed job wrote its slot"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Set the flag under the queue mutex: any worker that read
        // shutdown = false is then provably inside `wait` (it held the
        // lock from check to wait), so the notification cannot be lost.
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that panicked already surfaced the payload through
            // its batch; nothing useful is left to propagate here.
            let _ = handle.join();
        }
    }
}

/// A raw slot pointer smuggled into a worker; sound because every slot is
/// distinct and outlives its task (see [`WorkerPool::run`]).
struct SlotPtr<T>(*mut Option<T>);
// SAFETY: the pointee is only ever written by the one task that owns the
// pointer, while `run` keeps the slot vector alive and un-aliased.
unsafe impl<T: Send> Send for SlotPtr<T> {}

/// The worker thread body: pop-and-run until shutdown. The shutdown
/// check happens under the queue mutex the condvar waits on, so the
/// check-then-wait window is closed to `Drop`'s notification.
fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(task) = queue.jobs.pop_front() {
                    break Some(task);
                }
                if queue.shutdown {
                    break None;
                }
                queue = shared.work.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        match task {
            Some(task) => task(),
            None => return,
        }
    }
}

// ── Sharded scratch ─────────────────────────────────────────────────────

/// A sharded set of [`Scratch`] buffer pools: one shard per executor the
/// owner expects to run concurrently.
///
/// The session layer used to keep a single `Mutex<Scratch>` and fall
/// back to a **throwaway** pool whenever the lock was contended — every
/// concurrent query paid full allocation. With shards, a `try_lock`
/// sweep almost always finds a free pool (the owner sizes the shard
/// count from its worker-pool width), so contended queries reuse warm
/// buffers too; the allocate-fresh escape hatch survives only for
/// oversubscription beyond the shard count, where blocking could
/// deadlock a nested executor.
#[derive(Debug)]
pub struct ScratchPool {
    shards: Vec<Mutex<Scratch>>,
    /// Rotates the sweep's starting shard so concurrent callers spread
    /// out instead of convoying on shard 0.
    next: AtomicUsize,
}

impl ScratchPool {
    /// A pool of `shards` independent scratch buffers (at least one).
    pub fn new(shards: usize) -> ScratchPool {
        ScratchPool {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Scratch::new()))
                .collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Runs `f` with an uncontended shard's scratch pool. Only when every
    /// shard is busy — more concurrent executors than shards — does `f`
    /// get a throwaway pool (correctness never depends on which one).
    pub fn with<R>(&self, f: impl FnOnce(&mut Scratch) -> R) -> R {
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        for i in 0..self.shards.len() {
            let shard = &self.shards[(start + i) % self.shards.len()];
            match shard.try_lock() {
                Ok(mut scratch) => return f(&mut scratch),
                Err(std::sync::TryLockError::Poisoned(e)) => return f(&mut e.into_inner()),
                Err(std::sync::TryLockError::WouldBlock) => continue,
            }
        }
        f(&mut Scratch::new())
    }

    /// Total buffers currently pooled across all shards (tests/metrics).
    pub fn pooled_total(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.try_lock() {
                Ok(scratch) => scratch.pooled(),
                Err(_) => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_order() {
        for width in [1, 2, 3, 8] {
            let pool = WorkerPool::new(width);
            let jobs: Vec<_> = (0..37u64).map(|i| move || i * i).collect();
            let out = pool.run(jobs);
            assert_eq!(out, (0..37u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn width_one_spawns_no_threads() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.width(), 1);
        assert!(pool.handles.is_empty());
        // Zero is clamped, not rejected.
        assert_eq!(WorkerPool::new(0).width(), 1);
    }

    #[test]
    fn jobs_borrow_the_callers_stack() {
        let pool = WorkerPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let sums = pool.run(
            data.chunks(100)
                .map(|chunk| move || chunk.iter().sum::<u64>())
                .collect(),
        );
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn pool_is_reused_across_batches() {
        let pool = WorkerPool::new(3);
        let hits = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(
                (0..5)
                    .map(|_| {
                        || {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .collect(),
            );
        }
        assert_eq!(hits.load(Ordering::Relaxed), 250);
    }

    #[test]
    fn nested_runs_make_progress() {
        let pool = WorkerPool::new(2);
        let totals = pool.run(
            (0..4u64)
                .map(|i| {
                    let pool = &pool;
                    move || {
                        pool.run((0..3u64).map(|j| move || i * 10 + j).collect())
                            .into_iter()
                            .sum::<u64>()
                    }
                })
                .collect(),
        );
        assert_eq!(totals, vec![3, 33, 63, 93]);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = WorkerPool::new(3);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run::<u64, _>(
                (0..6u64)
                    .map(|i| {
                        move || {
                            assert!(i != 3, "job three fails");
                            i
                        }
                    })
                    .collect(),
            )
        }));
        assert!(outcome.is_err(), "the job's panic must reach the caller");
        // The pool survives a panicked batch.
        assert_eq!(pool.run(vec![|| 7u64]), vec![7]);
    }

    #[test]
    fn run_caught_isolates_panics_per_job() {
        for width in [1, 3] {
            let pool = WorkerPool::new(width);
            let results = pool.run_caught(
                (0..6u64)
                    .map(|i| {
                        move || {
                            assert!(i != 3, "job three fails");
                            i * 2
                        }
                    })
                    .collect(),
            );
            assert_eq!(results.len(), 6);
            for (i, r) in results.iter().enumerate() {
                if i == 3 {
                    assert!(r.is_err(), "width {width}: job 3 must fail alone");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u64 * 2, "width {width}");
                }
            }
            // The pool stays reusable.
            assert_eq!(pool.run(vec![|| 9u64]), vec![9]);
        }
    }

    #[test]
    fn jobs_inherit_the_submitters_ambient_budget() {
        use crate::governor::{self, Budget};
        for width in [1, 4] {
            let pool = WorkerPool::new(width);
            let budget = Arc::new(Budget::new());
            let _guard = governor::enter(Arc::clone(&budget));
            let seen = pool.run(
                (0..8)
                    .map(|_| {
                        let want = Arc::clone(&budget);
                        move || governor::current().is_some_and(|b| Arc::ptr_eq(&b, &want))
                    })
                    .collect(),
            );
            assert!(
                seen.iter().all(|&ok| ok),
                "width {width}: every job must see the submitter's budget"
            );
        }
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let pool = WorkerPool::new(4);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = &pool;
                scope.spawn(move || {
                    let out = pool.run((0..8u64).map(|i| move || t * 100 + i).collect());
                    assert_eq!(out.len(), 8);
                    assert_eq!(out[7], t * 100 + 7);
                });
            }
        });
    }

    #[test]
    fn scratch_shards_hand_out_distinct_pools() {
        let pool = ScratchPool::new(3);
        assert_eq!(pool.shards(), 3);
        // Warm one shard, then hold it while a second caller sweeps to a
        // different shard instead of allocating a throwaway pool.
        pool.with(|s| {
            let mut buf = s.take();
            buf.reserve(64);
            s.put(buf);
        });
        assert_eq!(pool.pooled_total(), 1);
        pool.with(|held| {
            let buf = held.take(); // keep the warm shard busy
            pool.with(|other| {
                // Different shard: the warm buffer is not here.
                let fresh = other.take();
                assert_eq!(fresh.capacity(), 0);
                other.put({
                    let mut b = fresh;
                    b.reserve(16);
                    b
                });
            });
            held.put(buf);
        });
        assert_eq!(pool.pooled_total(), 2);
    }

    #[test]
    fn scratch_pool_clamps_to_one_shard() {
        let pool = ScratchPool::new(0);
        assert_eq!(pool.shards(), 1);
        assert_eq!(pool.with(|_| 42), 42);
    }

    #[test]
    fn concurrent_queries_reuse_shards_without_allocating() {
        use crate::testutil::{random_context, random_doc};
        use crate::{descendant_many, Variant};
        use staircase_accel::Context;

        let doc = random_doc(5, 800);
        let pool = ScratchPool::new(8);
        let one_batch = |scratch: &mut Scratch, seed: u64| {
            let ctx = random_context(&doc, 0xAB ^ seed, 15);
            let refs: Vec<&Context> = vec![&ctx];
            for (c, _) in descendant_many(&doc, &refs, Variant::EstimationSkipping, scratch) {
                scratch.recycle(c);
            }
        };
        // Warm every shard deterministically: sequential calls rotate
        // the sweep's starting shard through all of them.
        for seed in 0..pool.shards() as u64 {
            pool.with(|scratch| one_batch(scratch, seed));
        }
        let steady = pool.pooled_total();
        assert!(steady > 0, "warm shards must hold recycled buffers");

        // Steady state under contention: four concurrent queries per
        // round, every one sweeping out a warm shard — no throwaway
        // pools, no new allocations, no dropped buffers.
        for _ in 0..5 {
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    let pool = &pool;
                    let one_batch = &one_batch;
                    scope.spawn(move || {
                        pool.with(|scratch| one_batch(scratch, t));
                    });
                }
            });
            assert_eq!(
                pool.pooled_total(),
                steady,
                "steady-state shard pools neither grow nor shrink"
            );
        }
    }
}
