//! Partitioned parallel staircase join.
//!
//! §3.2 observes that the pruned context "naturally leads to a parallel
//! XPath execution strategy": each staircase step owns a disjoint pre-range
//! partition of the plane (Figure 8), so partitions can be evaluated
//! independently and concatenated — results stay duplicate-free and in
//! document order with no merge step. §6 proposes the same idea as a
//! fragmentation strategy for documents beyond 1 GB.
//!
//! Since the pooled-executor refactor these joins run their chunks on a
//! [`WorkerPool`] — the session layer passes its persistent pool through
//! [`descendant_parallel_on`] / [`ancestor_parallel_on`], so no threads
//! are spawned per call. The original [`descendant_parallel`] /
//! [`ancestor_parallel`] entry points remain for standalone use and
//! build a transient pool of the requested width.

use staircase_accel::{Context, Doc, Pre};

use crate::anc::ancestor_partitions;
use crate::desc::descendant_partitions;
use crate::pool::WorkerPool;
use crate::prune::{prune_ancestor, prune_descendant};
use crate::stats::StepStats;
use crate::Variant;

/// Parallel `descendant` staircase join over `chunks` partition chunks,
/// executed by a transient pool of the same width.
///
/// Equivalent to [`crate::descendant`] (asserted by tests); the pruned
/// staircase is split into contiguous chunks of steps, one worker per
/// chunk. Workers write into private result buffers that are concatenated
/// in step order. Prefer [`descendant_parallel_on`] when a persistent
/// pool is at hand.
pub fn descendant_parallel(
    doc: &Doc,
    context: &Context,
    variant: Variant,
    threads: usize,
) -> (Context, StepStats) {
    descendant_parallel_on(doc, context, variant, threads, &WorkerPool::new(threads))
}

/// [`descendant_parallel`] on a caller-provided persistent [`WorkerPool`]
/// (the session's), splitting the staircase into `chunks` contiguous
/// step chunks. No threads are spawned; the pool's executors (its
/// workers plus the calling thread) drain the chunks.
pub fn descendant_parallel_on(
    doc: &Doc,
    context: &Context,
    variant: Variant,
    chunks: usize,
    pool: &WorkerPool,
) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_descendant(doc, context);
    stats.context_out = pruned.len();
    let steps = pruned.as_slice();
    let n = doc.len() as Pre;

    let bounds = chunk_bounds(steps.len(), chunks);
    let outputs: Vec<(Vec<Pre>, StepStats)> = pool.run(
        bounds
            .iter()
            .map(|&(lo, hi)| {
                let chunk = &steps[lo..hi];
                // This chunk's final partition ends where the next chunk's
                // first step begins (or at the end of the plane).
                let end = steps_end(steps, hi, n);
                move || {
                    let mut out = Vec::new();
                    let mut st = StepStats::default();
                    descendant_partitions(doc, chunk, end, variant, &mut out, &mut st);
                    (out, st)
                }
            })
            .collect(),
    );

    let mut result = Vec::with_capacity(outputs.iter().map(|(v, _)| v.len()).sum());
    for (part, st) in &outputs {
        result.extend_from_slice(part);
        stats.merge(st);
    }
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Parallel `ancestor` staircase join over `threads` partition chunks on
/// a transient pool; prefer [`ancestor_parallel_on`] when a persistent
/// pool is at hand.
pub fn ancestor_parallel(
    doc: &Doc,
    context: &Context,
    variant: Variant,
    threads: usize,
) -> (Context, StepStats) {
    ancestor_parallel_on(doc, context, variant, threads, &WorkerPool::new(threads))
}

/// [`ancestor_parallel`] on a caller-provided persistent [`WorkerPool`].
pub fn ancestor_parallel_on(
    doc: &Doc,
    context: &Context,
    variant: Variant,
    chunks: usize,
    pool: &WorkerPool,
) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_ancestor(doc, context);
    stats.context_out = pruned.len();
    let steps = pruned.as_slice();

    let bounds = chunk_bounds(steps.len(), chunks);
    let outputs: Vec<(Vec<Pre>, StepStats)> = pool.run(
        bounds
            .iter()
            .map(|&(lo, hi)| {
                let chunk = &steps[lo..hi];
                // This chunk's first partition starts right after the
                // previous chunk's last step (or at pre 0).
                let start = if lo == 0 { 0 } else { steps[lo - 1] + 1 };
                move || {
                    let mut out = Vec::new();
                    let mut st = StepStats::default();
                    ancestor_partitions(doc, chunk, start, variant, &mut out, &mut st);
                    (out, st)
                }
            })
            .collect(),
    );

    let mut result = Vec::with_capacity(outputs.iter().map(|(v, _)| v.len()).sum());
    for (part, st) in &outputs {
        result.extend_from_slice(part);
        stats.merge(st);
    }
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Splits `len` steps into at most `threads` contiguous, non-empty chunks.
fn chunk_bounds(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let workers = threads.max(1).min(len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / workers;
    let extra = len % workers;
    let mut bounds = Vec::with_capacity(workers);
    let mut lo = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        bounds.push((lo, lo + size));
        lo += size;
    }
    bounds
}

/// The pre rank where the partition after step index `hi - 1` ends.
fn steps_end(steps: &[Pre], hi: usize, n: Pre) -> Pre {
    steps.get(hi).copied().unwrap_or(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_context, random_doc};
    use crate::{ancestor, descendant};

    #[test]
    fn chunk_bounds_cover_everything() {
        for len in [0usize, 1, 2, 5, 16, 17, 100] {
            for threads in [1usize, 2, 3, 8, 64] {
                let chunks = chunk_bounds(len, threads);
                if len == 0 {
                    assert!(chunks.is_empty());
                    continue;
                }
                assert_eq!(chunks.first().unwrap().0, 0);
                assert_eq!(chunks.last().unwrap().1, len);
                assert!(
                    chunks.iter().all(|&(lo, hi)| lo < hi),
                    "empty chunk: {len}/{threads}"
                );
                assert!(chunks.windows(2).all(|w| w[0].1 == w[1].0));
            }
        }
    }

    #[test]
    fn parallel_descendant_equals_serial() {
        for seed in 0..12 {
            let doc = random_doc(seed, 700);
            let ctx = random_context(&doc, seed ^ 0xD00D, 50);
            let (serial, sstats) = descendant(&doc, &ctx, Variant::EstimationSkipping);
            for threads in [1, 2, 3, 7] {
                let (par, pstats) =
                    descendant_parallel(&doc, &ctx, Variant::EstimationSkipping, threads);
                assert_eq!(serial, par, "seed {seed}, threads {threads}");
                assert_eq!(sstats.result_size, pstats.result_size);
                assert_eq!(sstats.partitions, pstats.partitions);
            }
        }
    }

    #[test]
    fn parallel_ancestor_equals_serial() {
        for seed in 0..12 {
            let doc = random_doc(seed, 700);
            let ctx = random_context(&doc, seed ^ 0xE77E, 50);
            let (serial, _) = ancestor(&doc, &ctx, Variant::Skipping);
            for threads in [1, 2, 3, 7] {
                let (par, _) = ancestor_parallel(&doc, &ctx, Variant::Skipping, threads);
                assert_eq!(serial, par, "seed {seed}, threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_access_counts_match_serial() {
        // Partitioning the staircase must not change which nodes the join
        // touches — only who touches them.
        let doc = random_doc(42, 1500);
        let ctx = random_context(&doc, 0x1234, 80);
        let (_, serial) = descendant(&doc, &ctx, Variant::Skipping);
        let (_, par) = descendant_parallel(&doc, &ctx, Variant::Skipping, 4);
        assert_eq!(serial.nodes_scanned, par.nodes_scanned);
        assert_eq!(serial.nodes_skipped, par.nodes_skipped);
        assert_eq!(serial.nodes_copied, par.nodes_copied);
    }

    #[test]
    fn shared_pool_serves_both_joins() {
        // The session path: one persistent pool, many joins, no spawning
        // per call.
        let pool = WorkerPool::new(4);
        let doc = random_doc(9, 900);
        let ctx = random_context(&doc, 0xFADE, 60);
        let (serial_d, _) = descendant(&doc, &ctx, Variant::EstimationSkipping);
        let (serial_a, _) = ancestor(&doc, &ctx, Variant::Skipping);
        for chunks in [2, 4, 8] {
            let (par_d, _) =
                descendant_parallel_on(&doc, &ctx, Variant::EstimationSkipping, chunks, &pool);
            assert_eq!(serial_d, par_d, "chunks {chunks}");
            let (par_a, _) = ancestor_parallel_on(&doc, &ctx, Variant::Skipping, chunks, &pool);
            assert_eq!(serial_a, par_a, "chunks {chunks}");
        }
    }

    #[test]
    fn empty_context_parallel() {
        let doc = random_doc(1, 100);
        let (r, _) = descendant_parallel(&doc, &Context::empty(), Variant::Basic, 4);
        assert!(r.is_empty());
        let (r, _) = ancestor_parallel(&doc, &Context::empty(), Variant::Basic, 4);
        assert!(r.is_empty());
    }

    #[test]
    fn more_threads_than_steps() {
        let doc = random_doc(9, 300);
        let ctx = Context::singleton(doc.root());
        let (serial, _) = descendant(&doc, &ctx, Variant::EstimationSkipping);
        let (par, _) = descendant_parallel(&doc, &ctx, Variant::EstimationSkipping, 16);
        assert_eq!(serial, par);
    }
}
