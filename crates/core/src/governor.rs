//! The query governor: deadlines, cost budgets, and cooperative
//! cancellation for long staircase scans.
//!
//! The staircase join's whole design is long pruned passes over the
//! pre/post plane — exactly the shape that, on an adversarial or
//! mis-estimated query, turns into a runaway scan holding a shared
//! batch (and, one layer up, a server's admission window) hostage. A
//! [`Budget`] is the antidote: a cheap, shareable token carrying an
//! optional wall-clock deadline, an optional touched-nodes cost
//! ceiling, and an atomic cancel flag. Kernels check it **cooperatively
//! at amortized boundaries** — partition and chunk boundaries in the
//! plane scans, entry batches in the merged multi-context scans, seek
//! boundaries in the twig matcher — so the ungoverned fast path pays
//! one thread-local load per kernel call and a governed scan observes a
//! trip within [`TICK_GRAIN`] touched nodes (plus one mask-kernel
//! chunk, [`SCAN_CHUNK`]).
//!
//! # Threading model
//!
//! The kernels keep their public signatures: a budget is installed as
//! the thread's *ambient* budget with [`enter`] (an RAII guard restores
//! the previous one, so nesting and recursion are safe), and each
//! kernel invocation picks it up with [`Ticker::ambient`]. The worker
//! pool captures the submitting thread's ambient budget and re-installs
//! it inside every pooled job, so governance follows the work across
//! threads (morsel splits, parallel rounds).
//!
//! A budget is deliberately *advisory inside* a kernel: once
//! [`Ticker::tick`] reports a trip the kernel abandons its scan and
//! returns whatever partial state it has — the **caller** (the lane
//! executor upstairs) is responsible for discarding the partial result
//! and surfacing the typed error. Trips latch: the first cause wins and
//! every later check reports it, so a deadline that fires mid-pass is
//! still the answer at the round boundary.
//!
//! Charging discipline (who counts touched nodes):
//!
//! * with an ambient budget installed, the **kernels** charge as they
//!   scan (that is what makes mid-pass trips prompt);
//! * without one, the executor charges observed per-lane touches at
//!   round boundaries — coarser, overshoot bounded by one pass.
//!
//! Callers must never do both for the same pass.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a governed execution stopped early. Carried by the latched trip
/// state of a [`Budget`]; the query layer maps it onto its typed
/// errors (`DeadlineExceeded` / `BudgetExhausted` / `Cancelled`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trip {
    /// The wall-clock deadline passed.
    Deadline,
    /// The touched-nodes cost ceiling was exceeded.
    Cost,
    /// [`Budget::cancel`] was called.
    Cancelled,
}

impl Trip {
    fn as_u8(self) -> u8 {
        match self {
            Trip::Deadline => 1,
            Trip::Cost => 2,
            Trip::Cancelled => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Trip> {
        match v {
            1 => Some(Trip::Deadline),
            2 => Some(Trip::Cost),
            3 => Some(Trip::Cancelled),
            _ => None,
        }
    }
}

impl std::fmt::Display for Trip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trip::Deadline => write!(f, "deadline exceeded"),
            Trip::Cost => write!(f, "cost budget exhausted"),
            Trip::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A shareable execution budget: wall-clock deadline + touched-nodes
/// ceiling + cancel flag, with a latched trip state.
///
/// Cheap to share (`Arc<Budget>`) and cheap to check; see the module
/// docs for the cooperative-checking contract. An unconstrained budget
/// ([`Budget::new`]) never trips on its own but can still be
/// [cancelled](Budget::cancel).
///
/// ```
/// use staircase_core::governor::{Budget, Trip};
/// use std::sync::Arc;
///
/// let b = Arc::new(Budget::new().with_max_touched(100));
/// assert_eq!(b.charge(64), None);
/// assert_eq!(b.charge(64), Some(Trip::Cost));
/// // Trips latch: later checks keep reporting the first cause.
/// b.cancel();
/// assert_eq!(b.check(), Some(Trip::Cost));
/// ```
#[derive(Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_touched: Option<u64>,
    touched: AtomicU64,
    cancelled: AtomicBool,
    /// Latched first trip (0 = none, else `Trip::as_u8`).
    tripped: AtomicU8,
}

impl Budget {
    /// An unconstrained budget: no deadline, no cost ceiling. Useful as
    /// a pure cancellation token.
    pub fn new() -> Budget {
        Budget::default()
    }

    /// Caps execution at the wall-clock instant `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Caps execution `timeout` from now.
    pub fn with_deadline_in(self, timeout: Duration) -> Budget {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Caps the number of touched nodes (the kernels' incremental
    /// `nodes_touched` unit) at `max`.
    pub fn with_max_touched(mut self, max: u64) -> Budget {
        self.max_touched = Some(max);
        self
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Requests cooperative cancellation: the next check (on whatever
    /// thread is running the work) trips with [`Trip::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has [`Budget::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Total nodes charged so far.
    pub fn touched(&self) -> u64 {
        self.touched.load(Ordering::Relaxed)
    }

    /// Adds `n` touched nodes **without** checking limits — the
    /// [`Ticker`]'s drop-flush, so partial tick grains still count.
    pub fn add_touched(&self, n: u64) {
        if n > 0 {
            self.touched.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Charges `n` touched nodes and runs a full check.
    pub fn charge(&self, n: u64) -> Option<Trip> {
        self.add_touched(n);
        self.check()
    }

    /// The full cooperative check: latched trip, then cancel flag, then
    /// deadline (one clock read), then cost ceiling. The first failing
    /// condition latches and is returned; `None` means keep going.
    pub fn check(&self) -> Option<Trip> {
        if let Some(t) = self.trip() {
            return Some(t);
        }
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(self.latch(Trip::Cancelled));
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(self.latch(Trip::Deadline));
            }
        }
        if let Some(max) = self.max_touched {
            if self.touched.load(Ordering::Relaxed) > max {
                return Some(self.latch(Trip::Cost));
            }
        }
        None
    }

    /// The clock-free check: latched trip and cancel flag only. What a
    /// sub-grain [`Ticker::tick`] pays.
    pub fn quick_check(&self) -> Option<Trip> {
        if let Some(t) = self.trip() {
            return Some(t);
        }
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(self.latch(Trip::Cancelled));
        }
        None
    }

    /// The latched trip state, if any — no new conditions are
    /// evaluated.
    pub fn trip(&self) -> Option<Trip> {
        Trip::from_u8(self.tripped.load(Ordering::Relaxed))
    }

    /// Latches `t` as the trip cause unless one is already latched;
    /// returns the winning cause either way.
    fn latch(&self, t: Trip) -> Trip {
        let _ = self
            .tripped
            .compare_exchange(0, t.as_u8(), Ordering::Relaxed, Ordering::Relaxed);
        self.trip().unwrap_or(t)
    }
}

thread_local! {
    /// The thread's ambient budget; see [`enter`].
    static AMBIENT: RefCell<Option<Arc<Budget>>> = const { RefCell::new(None) };
}

/// Installs `budget` as this thread's ambient budget for the guard's
/// lifetime; the previous ambient budget (if any) is restored on drop,
/// so scopes nest and survive panics.
#[must_use = "the budget is uninstalled when the guard drops"]
pub fn enter(budget: Arc<Budget>) -> AmbientGuard {
    AMBIENT.with(|cell| AmbientGuard {
        prev: cell.replace(Some(budget)),
    })
}

/// The budget installed on this thread by the innermost live [`enter`]
/// guard, if any.
pub fn current() -> Option<Arc<Budget>> {
    AMBIENT.with(|cell| cell.borrow().clone())
}

/// RAII guard of [`enter`]: restores the previously ambient budget.
#[derive(Debug)]
pub struct AmbientGuard {
    prev: Option<Arc<Budget>>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|cell| {
            *cell.borrow_mut() = self.prev.take();
        });
    }
}

/// How many touched nodes a [`Ticker`] accumulates before paying a full
/// budget check (one clock read). Small enough that a 50 ms deadline is
/// honored with single-digit-millisecond overshoot on any realistic
/// scan rate, large enough to amortize to noise.
pub const TICK_GRAIN: u64 = 4096;

/// How many positions a governed mask-kernel range is chunked into per
/// check. The 64-lane bitmask kernels take whole ranges; under a budget
/// the partition loops split those ranges at this stride and tick
/// between chunks, so even a document-spanning single partition cannot
/// overshoot a deadline by more than one chunk.
pub const SCAN_CHUNK: u32 = 8192;

/// A kernel's per-invocation view of the ambient budget: accumulates
/// touch charges and checks the budget every [`TICK_GRAIN`] units.
///
/// With no ambient budget installed, [`Ticker::tick`] is one branch —
/// the ungoverned fast path. On drop, any sub-grain remainder is
/// flushed into the budget's touched counter (unchecked), so accounting
/// stays exact.
#[derive(Debug)]
pub struct Ticker {
    budget: Option<Arc<Budget>>,
    pending: u64,
}

impl Ticker {
    /// A ticker against this thread's ambient budget ([`current`]);
    /// inert when none is installed.
    pub fn ambient() -> Ticker {
        Ticker {
            budget: current(),
            pending: 0,
        }
    }

    /// A ticker against an explicit budget (`None` = inert).
    pub fn for_budget(budget: Option<Arc<Budget>>) -> Ticker {
        Ticker { budget, pending: 0 }
    }

    /// Is there a budget to enforce? Kernels use this to decide whether
    /// big mask-kernel ranges need chunking ([`SCAN_CHUNK`]).
    pub fn active(&self) -> bool {
        self.budget.is_some()
    }

    /// Charges `n` touched units and reports whether the budget has
    /// tripped. Every [`TICK_GRAIN`] accumulated units pays a full
    /// check (deadline included); in between, only the latched-trip and
    /// cancel flags are read. `true` means *stop now*: abandon the scan
    /// and return — the caller discards the partial result.
    #[inline]
    pub fn tick(&mut self, n: u64) -> bool {
        let Some(budget) = &self.budget else {
            return false;
        };
        self.pending += n;
        if self.pending >= TICK_GRAIN {
            let charge = std::mem::take(&mut self.pending);
            budget.charge(charge).is_some()
        } else {
            budget.quick_check().is_some()
        }
    }

    /// Has the underlying budget tripped (latched)?
    pub fn tripped(&self) -> bool {
        self.budget.as_ref().is_some_and(|b| b.trip().is_some())
    }
}

impl Drop for Ticker {
    fn drop(&mut self) {
        if let Some(budget) = &self.budget {
            budget.add_touched(std::mem::take(&mut self.pending));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_budget_never_trips() {
        let b = Budget::new();
        assert_eq!(b.check(), None);
        assert_eq!(b.charge(1 << 40), None);
        assert_eq!(b.trip(), None);
    }

    #[test]
    fn cost_ceiling_trips_and_latches() {
        let b = Budget::new().with_max_touched(100);
        assert_eq!(b.charge(100), None, "at the ceiling is still fine");
        assert_eq!(b.charge(1), Some(Trip::Cost));
        assert_eq!(b.touched(), 101);
        // Latched: cancel after the fact does not change the cause.
        b.cancel();
        assert_eq!(b.check(), Some(Trip::Cost));
        assert_eq!(b.trip(), Some(Trip::Cost));
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let b = Budget::new().with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(b.check(), Some(Trip::Deadline));
        let b = Budget::new().with_deadline_in(Duration::from_secs(3600));
        assert_eq!(b.check(), None);
    }

    #[test]
    fn cancellation_is_cross_thread_visible() {
        let b = Arc::new(Budget::new());
        assert_eq!(b.quick_check(), None);
        let b2 = Arc::clone(&b);
        std::thread::spawn(move || b2.cancel()).join().unwrap();
        assert!(b.is_cancelled());
        assert_eq!(b.quick_check(), Some(Trip::Cancelled));
    }

    #[test]
    fn ambient_scopes_nest_and_restore() {
        assert!(current().is_none());
        let outer = Arc::new(Budget::new().with_max_touched(1));
        let inner = Arc::new(Budget::new().with_max_touched(2));
        {
            let _g1 = enter(Arc::clone(&outer));
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
            {
                let _g2 = enter(Arc::clone(&inner));
                assert!(Arc::ptr_eq(&current().unwrap(), &inner));
            }
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        }
        assert!(current().is_none());
    }

    #[test]
    fn ticker_amortizes_charges_and_flushes_on_drop() {
        let b = Arc::new(Budget::new());
        {
            let _g = enter(Arc::clone(&b));
            let mut t = Ticker::ambient();
            assert!(t.active());
            // Sub-grain ticks don't hit the shared counter yet...
            for _ in 0..10 {
                assert!(!t.tick(100));
            }
            assert_eq!(b.touched(), 0);
            // ...until the grain rolls over.
            assert!(!t.tick(TICK_GRAIN));
            assert!(b.touched() >= TICK_GRAIN);
            // The remainder flushes when the ticker drops.
        }
        assert_eq!(b.touched(), 1000 + TICK_GRAIN);
    }

    #[test]
    fn ticker_reports_trips_promptly() {
        let b = Arc::new(Budget::new().with_max_touched(TICK_GRAIN));
        let _g = enter(Arc::clone(&b));
        let mut t = Ticker::ambient();
        let mut stopped_at = None;
        for i in 0..10 {
            if t.tick(TICK_GRAIN) {
                stopped_at = Some(i);
                break;
            }
        }
        // The ceiling is one grain: the second full-grain tick trips.
        assert_eq!(stopped_at, Some(1));
        assert_eq!(b.trip(), Some(Trip::Cost));
        // Cancellation is seen on the very next (sub-grain) tick.
        let c = Arc::new(Budget::new());
        let mut t = Ticker::for_budget(Some(Arc::clone(&c)));
        assert!(!t.tick(1));
        c.cancel();
        assert!(t.tick(1));
    }

    #[test]
    fn inert_ticker_is_free_and_never_stops() {
        let mut t = Ticker::ambient();
        assert!(!t.active());
        assert!(!t.tick(u64::MAX / 2));
        assert!(!t.tripped());
    }
}
