//! Existential (semijoin) variants of the staircase join.
//!
//! XPath predicates like `bidder[descendant::increase]` do not need the
//! descendants themselves — only whether one exists. The pre/post plane
//! answers that with a single probe: the subtree of `c` is the contiguous
//! preorder run `(c, c + |subtree|]`, so the *first* fragment node after
//! `c` decides the predicate ("the paper's Figure 7(b): once a node
//! follows `c`, everything after it does too").
//!
//! These operators power `staircase-xpath`'s predicate evaluation and the
//! Q2 rewrite experiment; they also double as the EXISTS probe the paper's
//! DB2 rewrite relies on, but tree-aware: one comparison per context node
//! instead of an index range scan.

use staircase_accel::{Context, Doc, Pre};

use crate::batch::dedup_pass;
use crate::stats::StepStats;

/// Keeps the context nodes that have at least one descendant in `list`
/// (`list` = pre-sorted candidate nodes, e.g. a tag fragment).
///
/// Cost: one binary search plus one postorder comparison per context node
/// — `O(|context| · log |list|)`, independent of subtree sizes.
pub fn has_descendant_in(doc: &Doc, context: &Context, list: &[Pre]) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        context_out: context.len(),
        ..Default::default()
    };
    let post = doc.post_column();
    let mut result = Vec::new();
    for c in context.iter() {
        // First list entry after c in document order. The subtree of c is
        // contiguous, so either this entry is a descendant or none is.
        let i = list.partition_point(|&p| p <= c);
        if let Some(&p) = list.get(i) {
            stats.nodes_scanned += 1;
            if post[p as usize] < post[c as usize] {
                result.push(c);
            }
        }
    }
    stats.result_size = result.len();
    stats.partitions = context.len();
    (Context::from_sorted(result), stats)
}

/// Keeps the context nodes that have at least one ancestor in `list`.
///
/// Walks the parent chain (at most `h` steps, the document height) with a
/// binary-search membership probe per step.
pub fn has_ancestor_in(doc: &Doc, context: &Context, list: &[Pre]) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        context_out: context.len(),
        ..Default::default()
    };
    let mut result = Vec::new();
    for c in context.iter() {
        let mut a = doc.parent(c);
        while a != staircase_accel::NO_PARENT {
            stats.nodes_scanned += 1;
            if list.binary_search(&a).is_ok() {
                result.push(c);
                break;
            }
            a = doc.parent(a);
        }
    }
    stats.result_size = result.len();
    stats.partitions = context.len();
    (Context::from_sorted(result), stats)
}

/// Keeps the context nodes that have at least one *child* in `list`.
///
/// Children of `c` lie inside `c`'s contiguous subtree run; the probe
/// scans the list slice covering that run and tests the parent column.
pub fn has_child_in(doc: &Doc, context: &Context, list: &[Pre]) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        context_out: context.len(),
        ..Default::default()
    };
    let mut result = Vec::new();
    for c in context.iter() {
        let subtree_end = c + 1 + doc.subtree_size(c);
        let lo = list.partition_point(|&p| p <= c);
        let hi = lo + list[lo..].partition_point(|&p| p < subtree_end);
        for &p in &list[lo..hi] {
            stats.nodes_scanned += 1;
            if doc.parent(p) == c {
                result.push(c);
                break;
            }
        }
    }
    stats.result_size = result.len();
    stats.partitions = context.len();
    (Context::from_sorted(result), stats)
}

/// Probes K candidate sets against one shared `list`: the multi-context
/// form of [`has_descendant_in`].
///
/// The probes themselves are already O(1) reads per candidate, so the
/// batch form's leverage is *sharing*: identical candidate sets (the
/// common case when several queries in a batch carry the same predicate
/// over the same step result) are probed once, duplicates reporting zero
/// incremental touches — and the caller resolves the fragment list once
/// for the whole group instead of once per lane.
pub fn has_descendant_in_many(
    doc: &Doc,
    contexts: &[&Context],
    list: &[Pre],
) -> Vec<(Context, StepStats)> {
    dedup_pass(contexts, |ctx| has_descendant_in(doc, ctx, list))
}

/// The multi-context form of [`has_ancestor_in`]; see
/// [`has_descendant_in_many`] for the sharing contract.
pub fn has_ancestor_in_many(
    doc: &Doc,
    contexts: &[&Context],
    list: &[Pre],
) -> Vec<(Context, StepStats)> {
    dedup_pass(contexts, |ctx| has_ancestor_in(doc, ctx, list))
}

/// The multi-context form of [`has_child_in`]; see
/// [`has_descendant_in_many`] for the sharing contract.
pub fn has_child_in_many(
    doc: &Doc,
    contexts: &[&Context],
    list: &[Pre],
) -> Vec<(Context, StepStats)> {
    dedup_pass(contexts, |ctx| has_child_in(doc, ctx, list))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_context, random_doc};
    use crate::TagIndex;
    use staircase_accel::Axis;

    fn brute_exists(doc: &Doc, ctx: &Context, list: &[Pre], axis: Axis) -> Vec<Pre> {
        ctx.iter()
            .filter(|&c| list.iter().any(|&p| axis.contains(doc, c, p)))
            .collect()
    }

    #[test]
    fn descendant_exists_on_figure1() {
        let doc = Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap();
        let ctx: Context = doc.pres().collect();
        // list = {g (6), j (9)}.
        let (got, _) = has_descendant_in(&doc, &ctx, &[6, 9]);
        // nodes with g or j below: a, e, f (for g), i (for j).
        assert_eq!(got.as_slice(), &[0, 4, 5, 8]);
    }

    #[test]
    fn matches_brute_force_on_random_docs() {
        for seed in 0..20 {
            let doc = random_doc(seed, 400);
            let ctx = random_context(&doc, seed ^ 0x1357, 40);
            let idx = TagIndex::build(&doc);
            for tag in ["p", "q"] {
                let list = idx.fragment_by_name(&doc, tag);
                let (d, _) = has_descendant_in(&doc, &ctx, list);
                assert_eq!(
                    d.as_slice(),
                    &brute_exists(&doc, &ctx, list, Axis::Descendant)[..],
                    "desc {tag} seed {seed}"
                );
                let (a, _) = has_ancestor_in(&doc, &ctx, list);
                assert_eq!(
                    a.as_slice(),
                    &brute_exists(&doc, &ctx, list, Axis::Ancestor)[..],
                    "anc {tag} seed {seed}"
                );
                let (c, _) = has_child_in(&doc, &ctx, list);
                assert_eq!(
                    c.as_slice(),
                    &brute_exists(&doc, &ctx, list, Axis::Child)[..],
                    "child {tag} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn descendant_probe_is_one_comparison_per_context_node() {
        let doc = random_doc(5, 1000);
        let ctx: Context = doc.pres().collect();
        let idx = TagIndex::build(&doc);
        let list = idx.fragment_by_name(&doc, "p");
        let (_, stats) = has_descendant_in(&doc, &ctx, list);
        assert!(stats.nodes_scanned <= ctx.len() as u64);
    }

    #[test]
    fn ancestor_probe_bounded_by_height() {
        let doc = random_doc(6, 1000);
        let ctx: Context = doc.pres().collect();
        let idx = TagIndex::build(&doc);
        let list = idx.fragment_by_name(&doc, "q");
        let (_, stats) = has_ancestor_in(&doc, &ctx, list);
        assert!(stats.nodes_scanned <= ctx.len() as u64 * doc.height() as u64);
    }

    #[test]
    fn empty_inputs() {
        let doc = random_doc(1, 100);
        let ctx: Context = doc.pres().collect();
        let (r, _) = has_descendant_in(&doc, &ctx, &[]);
        assert!(r.is_empty());
        let (r, _) = has_ancestor_in(&doc, &Context::empty(), &[0]);
        assert!(r.is_empty());
        let (r, _) = has_child_in(&doc, &ctx, &[]);
        assert!(r.is_empty());
    }

    use staircase_accel::Doc;
}
