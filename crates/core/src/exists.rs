//! Existential (semijoin) variants of the staircase join.
//!
//! XPath predicates like `bidder[descendant::increase]` do not need the
//! descendants themselves — only whether one exists. The pre/post plane
//! answers that with a single probe: the subtree of `c` is the contiguous
//! preorder run `(c, c + |subtree|]`, so the *first* fragment node after
//! `c` decides the predicate ("the paper's Figure 7(b): once a node
//! follows `c`, everything after it does too").
//!
//! These operators power `staircase-xpath`'s predicate evaluation and the
//! Q2 rewrite experiment; they also double as the EXISTS probe the paper's
//! DB2 rewrite relies on, but tree-aware: one comparison per context node
//! instead of an index range scan.

use staircase_accel::{Context, Doc, Pre};

use crate::batch::dedup_pass;
use crate::morsel::morsel_count;
use crate::pool::WorkerPool;
use crate::stats::StepStats;

/// Keeps the context nodes that have at least one descendant in `list`
/// (`list` = pre-sorted candidate nodes, e.g. a tag fragment).
///
/// Cost: one binary search plus one postorder comparison per context node
/// — `O(|context| · log |list|)`, independent of subtree sizes.
pub fn has_descendant_in(doc: &Doc, context: &Context, list: &[Pre]) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        context_out: context.len(),
        ..Default::default()
    };
    let mut result = Vec::new();
    probe_descendant(doc, context.as_slice(), list, &mut result, &mut stats);
    stats.result_size = result.len();
    stats.partitions = context.len();
    (Context::from_sorted(result), stats)
}

/// The descendant probe over a candidate slice — the partition-bounded
/// core of [`has_descendant_in`], shared with the chunked parallel form
/// (each candidate's probe is independent, so any sub-slice evaluates
/// exactly as it would inside the full loop).
fn probe_descendant(
    doc: &Doc,
    candidates: &[Pre],
    list: &[Pre],
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
) {
    let post = doc.post_column();
    for &c in candidates {
        // First list entry after c in document order. The subtree of c is
        // contiguous, so either this entry is a descendant or none is.
        let i = list.partition_point(|&p| p <= c);
        if let Some(&p) = list.get(i) {
            stats.nodes_scanned += 1;
            if post[p as usize] < post[c as usize] {
                result.push(c);
            }
        }
    }
}

/// Keeps the context nodes that have at least one ancestor in `list`.
///
/// Walks the parent chain (at most `h` steps, the document height) with a
/// binary-search membership probe per step.
pub fn has_ancestor_in(doc: &Doc, context: &Context, list: &[Pre]) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        context_out: context.len(),
        ..Default::default()
    };
    let mut result = Vec::new();
    probe_ancestor(doc, context.as_slice(), list, &mut result, &mut stats);
    stats.result_size = result.len();
    stats.partitions = context.len();
    (Context::from_sorted(result), stats)
}

/// The ancestor probe over a candidate slice (see [`probe_descendant`]).
fn probe_ancestor(
    doc: &Doc,
    candidates: &[Pre],
    list: &[Pre],
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
) {
    for &c in candidates {
        let mut a = doc.parent(c);
        while a != staircase_accel::NO_PARENT {
            stats.nodes_scanned += 1;
            if list.binary_search(&a).is_ok() {
                result.push(c);
                break;
            }
            a = doc.parent(a);
        }
    }
}

/// Keeps the context nodes that have at least one *child* in `list`.
///
/// Children of `c` lie inside `c`'s contiguous subtree run; the probe
/// scans the list slice covering that run and tests the parent column.
pub fn has_child_in(doc: &Doc, context: &Context, list: &[Pre]) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        context_out: context.len(),
        ..Default::default()
    };
    let mut result = Vec::new();
    probe_child(doc, context.as_slice(), list, &mut result, &mut stats);
    stats.result_size = result.len();
    stats.partitions = context.len();
    (Context::from_sorted(result), stats)
}

/// The child probe over a candidate slice (see [`probe_descendant`]).
fn probe_child(
    doc: &Doc,
    candidates: &[Pre],
    list: &[Pre],
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
) {
    for &c in candidates {
        let subtree_end = c + 1 + doc.subtree_size(c);
        let lo = list.partition_point(|&p| p <= c);
        let hi = lo + list[lo..].partition_point(|&p| p < subtree_end);
        for &p in &list[lo..hi] {
            stats.nodes_scanned += 1;
            if doc.parent(p) == c {
                result.push(c);
                break;
            }
        }
    }
}

/// Probes K candidate sets against one shared `list`: the multi-context
/// form of [`has_descendant_in`].
///
/// The probes themselves are already O(1) reads per candidate, so the
/// batch form's leverage is *sharing*: identical candidate sets (the
/// common case when several queries in a batch carry the same predicate
/// over the same step result) are probed once, duplicates reporting zero
/// incremental touches — and the caller resolves the fragment list once
/// for the whole group instead of once per lane.
pub fn has_descendant_in_many(
    doc: &Doc,
    contexts: &[&Context],
    list: &[Pre],
) -> Vec<(Context, StepStats)> {
    dedup_pass(contexts, |ctx| has_descendant_in(doc, ctx, list))
}

/// The multi-context form of [`has_ancestor_in`]; see
/// [`has_descendant_in_many`] for the sharing contract.
pub fn has_ancestor_in_many(
    doc: &Doc,
    contexts: &[&Context],
    list: &[Pre],
) -> Vec<(Context, StepStats)> {
    dedup_pass(contexts, |ctx| has_ancestor_in(doc, ctx, list))
}

/// The multi-context form of [`has_child_in`]; see
/// [`has_descendant_in_many`] for the sharing contract.
pub fn has_child_in_many(
    doc: &Doc,
    contexts: &[&Context],
    list: &[Pre],
) -> Vec<(Context, StepStats)> {
    dedup_pass(contexts, |ctx| has_child_in(doc, ctx, list))
}

/// The parallel form of [`has_descendant_in_many`]: unique candidate
/// sets large enough to amortize handoff are probed in chunks on `pool`
/// (each candidate's probe is independent, so results and statistics are
/// identical to the sequential form).
pub fn has_descendant_in_many_par(
    doc: &Doc,
    contexts: &[&Context],
    list: &[Pre],
    pool: &WorkerPool,
) -> Vec<(Context, StepStats)> {
    dedup_pass(contexts, |ctx| {
        probe_chunked(ctx, pool, |cands, result, stats| {
            probe_descendant(doc, cands, list, result, stats);
        })
    })
}

/// The parallel form of [`has_ancestor_in_many`]; see
/// [`has_descendant_in_many_par`].
pub fn has_ancestor_in_many_par(
    doc: &Doc,
    contexts: &[&Context],
    list: &[Pre],
    pool: &WorkerPool,
) -> Vec<(Context, StepStats)> {
    dedup_pass(contexts, |ctx| {
        probe_chunked(ctx, pool, |cands, result, stats| {
            probe_ancestor(doc, cands, list, result, stats);
        })
    })
}

/// The parallel form of [`has_child_in_many`]; see
/// [`has_descendant_in_many_par`].
pub fn has_child_in_many_par(
    doc: &Doc,
    contexts: &[&Context],
    list: &[Pre],
    pool: &WorkerPool,
) -> Vec<(Context, StepStats)> {
    dedup_pass(contexts, |ctx| {
        probe_chunked(ctx, pool, |cands, result, stats| {
            probe_child(doc, cands, list, result, stats);
        })
    })
}

/// Splits one candidate set into contiguous chunks probed concurrently;
/// stays sequential when the set is too small to amortize the handoff.
fn probe_chunked(
    ctx: &Context,
    pool: &WorkerPool,
    probe: impl Fn(&[Pre], &mut Vec<Pre>, &mut StepStats) + Sync,
) -> (Context, StepStats) {
    let candidates = ctx.as_slice();
    let mut stats = StepStats {
        context_in: ctx.len(),
        context_out: ctx.len(),
        ..Default::default()
    };
    let mut result = Vec::new();
    match (pool.width() > 1)
        .then(|| morsel_count(candidates.len() as u64, pool.width()))
        .flatten()
    {
        None => probe(candidates, &mut result, &mut stats),
        Some(k) => {
            let chunk = candidates.len().div_ceil(k).max(1);
            let probe = &probe;
            let outs = pool.run(
                candidates
                    .chunks(chunk)
                    .map(|cands| {
                        move || {
                            let mut part = Vec::new();
                            let mut st = StepStats::default();
                            probe(cands, &mut part, &mut st);
                            (part, st)
                        }
                    })
                    .collect(),
            );
            for (part, st) in outs {
                result.extend_from_slice(&part);
                stats.nodes_scanned += st.nodes_scanned;
            }
        }
    }
    stats.result_size = result.len();
    stats.partitions = ctx.len();
    (Context::from_sorted(result), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_context, random_doc};
    use crate::TagIndex;
    use staircase_accel::Axis;

    fn brute_exists(doc: &Doc, ctx: &Context, list: &[Pre], axis: Axis) -> Vec<Pre> {
        ctx.iter()
            .filter(|&c| list.iter().any(|&p| axis.contains(doc, c, p)))
            .collect()
    }

    #[test]
    fn descendant_exists_on_figure1() {
        let doc = Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap();
        let ctx: Context = doc.pres().collect();
        // list = {g (6), j (9)}.
        let (got, _) = has_descendant_in(&doc, &ctx, &[6, 9]);
        // nodes with g or j below: a, e, f (for g), i (for j).
        assert_eq!(got.as_slice(), &[0, 4, 5, 8]);
    }

    #[test]
    fn matches_brute_force_on_random_docs() {
        for seed in 0..20 {
            let doc = random_doc(seed, 400);
            let ctx = random_context(&doc, seed ^ 0x1357, 40);
            let idx = TagIndex::build(&doc);
            for tag in ["p", "q"] {
                let list = idx.fragment_by_name(&doc, tag);
                let (d, _) = has_descendant_in(&doc, &ctx, list);
                assert_eq!(
                    d.as_slice(),
                    &brute_exists(&doc, &ctx, list, Axis::Descendant)[..],
                    "desc {tag} seed {seed}"
                );
                let (a, _) = has_ancestor_in(&doc, &ctx, list);
                assert_eq!(
                    a.as_slice(),
                    &brute_exists(&doc, &ctx, list, Axis::Ancestor)[..],
                    "anc {tag} seed {seed}"
                );
                let (c, _) = has_child_in(&doc, &ctx, list);
                assert_eq!(
                    c.as_slice(),
                    &brute_exists(&doc, &ctx, list, Axis::Child)[..],
                    "child {tag} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn descendant_probe_is_one_comparison_per_context_node() {
        let doc = random_doc(5, 1000);
        let ctx: Context = doc.pres().collect();
        let idx = TagIndex::build(&doc);
        let list = idx.fragment_by_name(&doc, "p");
        let (_, stats) = has_descendant_in(&doc, &ctx, list);
        assert!(stats.nodes_scanned <= ctx.len() as u64);
    }

    #[test]
    fn ancestor_probe_bounded_by_height() {
        let doc = random_doc(6, 1000);
        let ctx: Context = doc.pres().collect();
        let idx = TagIndex::build(&doc);
        let list = idx.fragment_by_name(&doc, "q");
        let (_, stats) = has_ancestor_in(&doc, &ctx, list);
        assert!(stats.nodes_scanned <= ctx.len() as u64 * doc.height() as u64);
    }

    #[test]
    fn empty_inputs() {
        let doc = random_doc(1, 100);
        let ctx: Context = doc.pres().collect();
        let (r, _) = has_descendant_in(&doc, &ctx, &[]);
        assert!(r.is_empty());
        let (r, _) = has_ancestor_in(&doc, &Context::empty(), &[0]);
        assert!(r.is_empty());
        let (r, _) = has_child_in(&doc, &ctx, &[]);
        assert!(r.is_empty());
    }

    #[test]
    fn parallel_probes_match_sequential_exactly() {
        use crate::WorkerPool;
        let pool = WorkerPool::new(4);
        let doc = random_doc(8, 9000);
        let idx = TagIndex::build(&doc);
        let list = idx.fragment_by_name(&doc, "p");
        // Whole-plane candidate set: far past the chunking gate, plus a
        // duplicate set exercising the dedup path.
        let all: Context = doc.pres().collect();
        let small = random_context(&doc, 0xC0FFEE, 20);
        let refs: Vec<&Context> = vec![&all, &small, &all];
        let par_d = has_descendant_in_many_par(&doc, &refs, list, &pool);
        let seq_d = has_descendant_in_many(&doc, &refs, list);
        let par_a = has_ancestor_in_many_par(&doc, &refs, list, &pool);
        let seq_a = has_ancestor_in_many(&doc, &refs, list);
        let par_c = has_child_in_many_par(&doc, &refs, list, &pool);
        let seq_c = has_child_in_many(&doc, &refs, list);
        for i in 0..refs.len() {
            assert_eq!(par_d[i], seq_d[i], "descendant query {i}");
            assert_eq!(par_a[i], seq_a[i], "ancestor query {i}");
            assert_eq!(par_c[i], seq_c[i], "child query {i}");
        }
        // The duplicate candidate set still reports zero incremental cost.
        assert_eq!(par_d[2].1.nodes_touched(), 0);
    }

    use staircase_accel::Doc;
}
