//! Multi-context ("lane") staircase joins: K queries, one pass.
//!
//! A server answering many queries over one document repeats the same
//! sequential scan once per query. But a pruned context is just a
//! sorted list of partition boundaries (§3.1), and sorted boundary
//! lists *merge*: exactly the observation that lets Leapfrog Triejoin
//! drive many sorted cursors through one coordinated pass (Veldhuizen,
//! ICDT 2013). Since the lane-native refactor every remaining scan
//! shape has a multi-context form, so multi-query execution is the
//! *native* form upstairs (`staircase-xpath` evaluates a single query
//! as the K = 1 batch):
//!
//! * [`descendant_many`] / [`ancestor_many`] interleave K contexts'
//!   staircase boundaries into one event list and produce all K result
//!   vectors from a **single left-to-right scan** of the `post`/`kind`
//!   columns;
//! * [`descendant_on_list_many`] / [`ancestor_on_list_many`] (this
//!   module) run the same merged-boundary discipline with **one forward
//!   cursor over a shared tag fragment** — the on-list join of
//!   [`crate::list`] has the same sorted structure as the plane scan,
//!   so it admits the same multi-cursor merge;
//! * [`crate::following_many`] / [`crate::preceding_many`] serve the
//!   horizontal axes' nested suffix/prefix regions from one filtered
//!   scan;
//! * [`crate::has_descendant_in_many`] and friends batch the semijoin
//!   predicate probes over one shared node list.
//!
//! Per query, the visited positions, pushes, and skip decisions are
//! exactly those of the sequential operator — results are bit-identical
//! — but a position shared by several lanes is *read once*. The
//! returned [`StepStats`] therefore count **incremental** cost: each
//! read is attributed to the first lane that needed it, so the
//! per-query `nodes_touched()` values sum to the physical reads. For
//! overlapping contexts (the common case — e.g. every query starting at
//! the document root) that sum is strictly below the sum of K
//! sequential runs. Queries whose context is *identical* to an earlier
//! query's are recognised up front and share the earlier result
//! outright (one `memcpy`, zero touches).
//!
//! [`Scratch`] is the companion buffer pool: it is threaded through
//! every multi-context operator and lives as long as its owner (the
//! session, upstairs, keeps one per shard of its
//! [`crate::ScratchPool`]), so repeated batches and rounds reuse result
//! and context allocations instead of paying `Vec::new()` plus regrowth
//! per step — a steady-state executor stops allocating (asserted by the
//! pool-reuse tests below).
//!
//! Every operator here also has a **morsel-parallel form**
//! ([`crate::descendant_many_par`] and friends): identical results and
//! statistics, with single-context batches split into disjoint
//! pre-range chunks executed on the owner's persistent
//! [`crate::WorkerPool`].

use staircase_accel::{Context, Doc, NodeKind, Pre};

use crate::anc::ancestor_partitions;
use crate::desc::descendant_partitions;
use crate::list::{ancestor_list_partitions, descendant_list_partitions};
use crate::prune::{prune_ancestor_into, prune_descendant_into};
use crate::stats::StepStats;
use crate::Variant;

/// A pool of `Vec<Pre>` buffers recycled across batch joins and steps.
///
/// Every result vector and pruned-context list a batch join needs is
/// [taken](Scratch::take) from the pool and — once its contents are no
/// longer needed — [put back](Scratch::put). A long-lived evaluator
/// reaches a steady state where no step allocates.
///
/// The pool is bounded two ways so a long-lived owner (the session
/// keeps one for its whole lifetime) cannot pin worst-case-query memory
/// forever: at most `MAX_POOLED` (64) buffers, and at most
/// `POOLED_ENTRY_BUDGET` (2²⁰) entries of total retained capacity —
/// returning a buffer that would bust the budget drops its allocation
/// instead.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<Pre>>,
    /// Sum of the pooled buffers' capacities, in entries.
    pooled_capacity: usize,
}

/// Upper bound on pooled buffers.
const MAX_POOLED: usize = 64;

/// Upper bound on the pool's total retained capacity, in entries
/// (4 MiB of `Pre`s): generous enough to recycle every buffer of a
/// typical batch between rounds, small enough that one
/// document-spanning query does not fix a long-lived session's resident
/// memory at its high-water mark.
const POOLED_ENTRY_BUDGET: usize = 1 << 20;

impl Scratch {
    /// An empty pool.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Hands out a cleared buffer, reusing a pooled allocation when one
    /// is available.
    pub fn take(&mut self) -> Vec<Pre> {
        match self.pool.pop() {
            Some(buf) => {
                self.pooled_capacity -= buf.capacity();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool (its contents are discarded); kept
    /// only while the pool stays under its size and capacity bounds.
    pub fn put(&mut self, mut buf: Vec<Pre>) {
        buf.clear();
        if self.pool.len() < MAX_POOLED
            && buf.capacity() > 0
            && self.pooled_capacity + buf.capacity() <= POOLED_ENTRY_BUDGET
        {
            self.pooled_capacity += buf.capacity();
            self.pool.push(buf);
        }
    }

    /// Recycles a no-longer-needed node sequence's allocation.
    pub fn recycle(&mut self, ctx: Context) {
        self.put(ctx.into_vec());
    }

    /// How many buffers are currently pooled (for tests and metrics).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// `rep[i]` = first index whose context is identical to `contexts[i]` —
/// the dedup criterion shared by [`dedup_pass`] and [`shared_pass`].
fn representatives(contexts: &[&Context]) -> Vec<usize> {
    let k = contexts.len();
    let mut rep: Vec<usize> = (0..k).collect();
    for i in 0..k {
        for j in 0..i {
            if rep[j] == j && contexts[j].as_slice() == contexts[i].as_slice() {
                rep[i] = j;
                break;
            }
        }
    }
    rep
}

/// Dedups identical contexts, runs `eval` over the unique ones, and maps
/// the results back to the callers' order: duplicates clone their
/// representative's result and report **zero incremental touches** (the
/// shared pass is attributed to the first caller that needed it).
///
/// The dedup backbone for multi-context operators whose probes are
/// already O(1)-per-candidate — today the semijoin probes
/// ([`crate::has_descendant_in_many`] and friends). The operators with
/// bespoke merged scans ([`shared_pass`] for the plane and fragment
/// joins, the suffix/prefix sharing of [`crate::following_many`] /
/// [`crate::preceding_many`]) handle duplicates inside those scans and
/// only share the [`representatives`] criterion.
pub(crate) fn dedup_pass(
    contexts: &[&Context],
    eval: impl Fn(&Context) -> (Context, StepStats),
) -> Vec<(Context, StepStats)> {
    let k = contexts.len();
    let rep = representatives(contexts);
    let mut out: Vec<Option<(Context, StepStats)>> = (0..k).map(|_| None).collect();
    for i in 0..k {
        if rep[i] == i {
            out[i] = Some(eval(contexts[i]));
        }
    }
    for i in 0..k {
        if rep[i] != i {
            // Shared with an earlier identical context: copy the result,
            // report zero incremental touches.
            let (ctx, st) = out[rep[i]]
                .as_ref()
                .expect("representatives evaluated before duplicates resolve");
            let shared = StepStats {
                context_in: st.context_in,
                context_out: st.context_out,
                result_size: st.result_size,
                partitions: st.partitions,
                ..Default::default()
            };
            out[i] = Some((ctx.clone(), shared));
        }
    }
    out.into_iter()
        .map(|o| o.expect("every context resolved to an evaluation or a duplicate"))
        .collect()
}

/// Evaluates `contexts[k]/descendant::node()` for every `k` with **one**
/// scan of the plane.
///
/// Equivalent, query by query, to K calls of [`crate::descendant`]
/// (asserted by tests); see the module docs above for the shared-cost
/// statistics contract.
pub fn descendant_many(
    doc: &Doc,
    contexts: &[&Context],
    variant: Variant,
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    shared_pass(
        doc,
        contexts,
        scratch,
        prune_descendant_into,
        |doc, lanes, _| match lanes {
            // One unique context (e.g. every query starts at the root):
            // the sequential join's tight loops are strictly faster than
            // the merged scan, and the single pass serves everyone.
            [lane] => descendant_partitions(
                doc,
                &lane.steps,
                doc.len() as Pre,
                variant,
                &mut lane.result,
                &mut lane.stats,
            ),
            _ => descendant_scan(doc, lanes, variant),
        },
    )
}

/// Evaluates `contexts[k]/ancestor::node()` for every `k` with **one**
/// scan of the plane; the multi-query twin of [`crate::ancestor`].
pub fn ancestor_many(
    doc: &Doc,
    contexts: &[&Context],
    variant: Variant,
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    shared_pass(
        doc,
        contexts,
        scratch,
        prune_ancestor_into,
        |doc, lanes, _| match lanes {
            [lane] => ancestor_partitions(
                doc,
                &lane.steps,
                0,
                variant,
                &mut lane.result,
                &mut lane.stats,
            ),
            _ => ancestor_scan(doc, lanes, variant),
        },
    )
}

/// Evaluates `contexts[k]/descendant::tag` for every `k` directly on one
/// shared tag fragment (`list`, pre-sorted): the multi-context form of
/// [`crate::descendant_on_list`].
///
/// The on-list join has the same sorted boundary structure as the full
/// plane scan, so the same trick applies: every lane's pruned staircase
/// boundaries merge into one event list, and a **single forward cursor**
/// over the fragment serves all K lanes — each fragment entry is
/// physically read at most once, attributed to the first lane that
/// needed it, while per lane the inspected entries and Z-region skips
/// are exactly those of the sequential join.
pub fn descendant_on_list_many(
    doc: &Doc,
    list: &[Pre],
    contexts: &[&Context],
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    shared_pass(
        doc,
        contexts,
        scratch,
        prune_descendant_into,
        |doc, lanes, _| match lanes {
            [lane] => descendant_list_partitions(
                doc,
                list,
                &lane.steps,
                doc.len() as Pre,
                &mut lane.result,
                &mut lane.stats,
            ),
            _ => descendant_list_scan(doc, list, lanes),
        },
    )
}

/// Evaluates `contexts[k]/ancestor::tag` for every `k` on one shared tag
/// fragment; the multi-context form of [`crate::ancestor_on_list`].
pub fn ancestor_on_list_many(
    doc: &Doc,
    list: &[Pre],
    contexts: &[&Context],
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    shared_pass(
        doc,
        contexts,
        scratch,
        prune_ancestor_into,
        |doc, lanes, _| match lanes {
            [lane] => ancestor_list_partitions(
                doc,
                list,
                &lane.steps,
                0,
                &mut lane.result,
                &mut lane.stats,
            ),
            _ => ancestor_list_scan(doc, list, lanes),
        },
    )
}

/// One query's slice of the shared scan.
pub(crate) struct Lane {
    /// Pruned staircase steps (partition boundaries), from the pool.
    pub(crate) steps: Vec<Pre>,
    /// Index of the next boundary not yet passed.
    next: usize,
    /// Pre rank of the currently open step (descendant scan).
    cur: Pre,
    /// Staircase boundary of the current partition (a postorder rank).
    bound: u32,
    /// Last position of the current copy phase, inclusive (descendant
    /// estimation skipping); positions `≤ cur` mean "no copy phase".
    copy_end: Pre,
    /// Descendant scan: `false` once skipping proved the rest of the
    /// partition empty. Ancestor scan: positions below `wake` are inside
    /// a jumped-over subtree block.
    awake: bool,
    /// First position the ancestor scan may inspect again after a jump.
    wake: Pre,
    /// `true` while a partition is open (descendant scan).
    open: bool,
    /// This lane's result, from the pool.
    pub(crate) result: Vec<Pre>,
    /// This lane's (incremental) statistics.
    pub(crate) stats: StepStats,
}

/// Dedups identical contexts, prunes each unique one, runs `scan` over
/// the unique lanes, and maps results back to the callers' order.
pub(crate) fn shared_pass(
    doc: &Doc,
    contexts: &[&Context],
    scratch: &mut Scratch,
    prune: impl Fn(&Doc, &Context, &mut Vec<Pre>),
    scan: impl FnOnce(&Doc, &mut [Lane], &mut Scratch),
) -> Vec<(Context, StepStats)> {
    let k = contexts.len();
    let rep = representatives(contexts);

    // One lane per unique context; lane_of[i] = its lane index (unique
    // queries only).
    let mut lane_of = vec![usize::MAX; k];
    let mut lanes: Vec<Lane> = Vec::new();
    for i in 0..k {
        if rep[i] != i {
            continue;
        }
        lane_of[i] = lanes.len();
        let mut steps = scratch.take();
        prune(doc, contexts[i], &mut steps);
        lanes.push(Lane {
            next: 0,
            cur: Pre::MAX,
            bound: 0,
            copy_end: 0,
            awake: false,
            wake: 0,
            open: false,
            result: scratch.take(),
            stats: StepStats {
                context_in: contexts[i].len(),
                context_out: steps.len(),
                ..Default::default()
            },
            steps,
        });
    }

    scan(doc, &mut lanes, scratch);

    // Hand pruned-step buffers back; results leave the pool as Contexts
    // (their allocations come back via `Scratch::recycle` once the
    // caller is done with them).
    let mut finished: Vec<Option<(Context, StepStats)>> = lanes
        .into_iter()
        .map(|mut lane| {
            lane.stats.result_size = lane.result.len();
            scratch.put(std::mem::take(&mut lane.steps));
            Some((Context::from_sorted(lane.result), lane.stats))
        })
        .collect();

    // Duplicates clone from their (still pooled) representative first;
    // representatives are then moved out without copying.
    let mut out: Vec<Option<(Context, StepStats)>> = (0..k).map(|_| None).collect();
    for i in 0..k {
        if rep[i] == i {
            continue;
        }
        // Shared with an earlier identical context: copy the result,
        // report zero incremental touches.
        let (ctx, st) = finished[lane_of[rep[i]]]
            .as_ref()
            .expect("representatives are moved out after duplicates resolve");
        let shared = StepStats {
            context_in: st.context_in,
            context_out: st.context_out,
            result_size: st.result_size,
            partitions: st.partitions,
            ..Default::default()
        };
        out[i] = Some((ctx.clone(), shared));
    }
    for i in 0..k {
        if rep[i] == i {
            out[i] = finished[lane_of[i]].take();
        }
    }
    out.into_iter()
        .map(|o| o.expect("every query resolved to a lane or a duplicate"))
        .collect()
}

/// Merges every lane's pruned steps into one interleaved boundary list:
/// `(pre, lane)` pairs in plane order.
fn merged_boundaries(lanes: &[Lane]) -> Vec<(Pre, u32)> {
    let total: usize = lanes.iter().map(|l| l.steps.len()).sum();
    let mut events = Vec::with_capacity(total);
    for (i, lane) in lanes.iter().enumerate() {
        events.extend(lane.steps.iter().map(|&c| (c, i as u32)));
    }
    events.sort_unstable();
    events
}

/// The merged descendant scan: left to right over the plane, opening
/// each lane's partitions at its own boundaries, copying/scanning/
/// sleeping per lane exactly as the sequential join would. An active
/// list keeps per-position work proportional to the lanes that actually
/// need the position; regions nobody needs are leapfrogged.
pub(crate) fn descendant_scan(doc: &Doc, lanes: &mut [Lane], variant: Variant) {
    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;
    let n = doc.len() as Pre;

    // Pre-size results from the Equation-1 guaranteed-descendant counts.
    for lane in lanes.iter_mut() {
        lane.result.reserve(crate::desc::guaranteed_result_estimate(
            post,
            &lane.steps,
            n,
        ));
    }

    let events = merged_boundaries(lanes);
    let mut ei = 0usize;
    let mut active: Vec<u32> = Vec::with_capacity(lanes.len());
    // Governed merged scans stop cooperatively at position granularity;
    // a trip abandons the whole pass (every lane's partial result is
    // discarded by the caller).
    let mut gov = crate::governor::Ticker::ambient();
    let Some(&(mut v, _)) = events.first() else {
        return; // every context pruned to nothing
    };
    while v < n {
        // Phase 1: boundaries at v open a fresh partition for their lane.
        while ei < events.len() && events[ei].0 == v {
            let li = events[ei].1;
            ei += 1;
            let lane = &mut lanes[li as usize];
            lane.stats.partitions += 1;
            lane.cur = v;
            lane.bound = post[v as usize];
            lane.next += 1;
            let part_end = lane.steps.get(lane.next).copied().unwrap_or(n);
            lane.copy_end = match variant {
                Variant::EstimationSkipping => lane.bound.min(part_end.saturating_sub(1)),
                _ => v,
            };
            if !(lane.open && lane.awake) {
                lane.open = true;
                lane.awake = true;
                active.push(li);
            }
        }
        if active.is_empty() {
            // Nobody needs the region ahead: leapfrog to the next
            // boundary event (every sleeping lane wakes at its own).
            match events.get(ei) {
                Some(&(next_v, _)) => {
                    debug_assert!(next_v > v);
                    v = next_v;
                    continue;
                }
                None => break,
            }
        }
        if gov.tick(1) {
            return;
        }
        // Phase 2: every active lane whose partition was open before v
        // inspects position v. The position is physically read at most
        // once; the read is attributed to the first lane that needed it.
        let mut touch: Option<(u32, bool)> = None;
        let mut ai = 0usize;
        while ai < active.len() {
            let li = active[ai];
            let lane = &mut lanes[li as usize];
            if lane.cur == v {
                ai += 1; // opened at v; its scan starts at v + 1
                continue;
            }
            if v <= lane.copy_end {
                // Copy phase: a guaranteed descendant, no comparison.
                if touch.is_none() {
                    touch = Some((li, true));
                }
                if kind[v as usize] != attr {
                    lane.result.push(v);
                }
                ai += 1;
            } else {
                if touch.is_none() {
                    touch = Some((li, false));
                }
                if post[v as usize] < lane.bound {
                    if kind[v as usize] != attr {
                        lane.result.push(v);
                    }
                    ai += 1;
                } else if variant != Variant::Basic {
                    // First miss: the rest of this lane's partition is a
                    // provably empty Z-region. Sleep until the lane's own
                    // next boundary (where phase 1 reopens it).
                    let part_end = lane.steps.get(lane.next).copied().unwrap_or(n);
                    lane.stats.nodes_skipped += u64::from(part_end - v - 1);
                    lane.awake = false;
                    active.swap_remove(ai);
                } else {
                    ai += 1;
                }
            }
        }
        match touch {
            Some((li, true)) => lanes[li as usize].stats.nodes_copied += 1,
            Some((li, false)) => lanes[li as usize].stats.nodes_scanned += 1,
            None => {}
        }
        v += 1;
    }
}

/// The merged ancestor scan: partitions *end* at each lane's boundaries;
/// subtree jumps (§3.3 / Equation 1) move a lane from the active to the
/// sleeping list until its wake position.
pub(crate) fn ancestor_scan(doc: &Doc, lanes: &mut [Lane], variant: Variant) {
    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;

    let events = merged_boundaries(lanes);
    let mut ei = 0usize;
    let mut active: Vec<u32> = Vec::with_capacity(lanes.len());
    let mut sleeping: Vec<u32> = Vec::new();
    let mut gov = crate::governor::Ticker::ambient();
    for (i, lane) in lanes.iter_mut().enumerate() {
        if !lane.steps.is_empty() {
            lane.stats.partitions = lane.steps.len();
            lane.bound = post[lane.steps[0] as usize];
            active.push(i as u32);
        }
    }

    let mut v: Pre = 0;
    // Earliest wake position among sleepers: the sleeping list is only
    // scanned when someone can actually rejoin.
    let mut min_wake: Pre = Pre::MAX;
    loop {
        // Sleepers whose jumped-over block ends here rejoin the scan
        // (jumps never overshoot the lane's own boundary, so a sleeping
        // lane is always back before its partition closes).
        if min_wake <= v {
            min_wake = Pre::MAX;
            let mut si = 0usize;
            while si < sleeping.len() {
                let li = sleeping[si];
                let wake = lanes[li as usize].wake;
                if wake <= v {
                    active.push(li);
                    sleeping.swap_remove(si);
                } else {
                    min_wake = min_wake.min(wake);
                    si += 1;
                }
            }
        }
        // Boundaries at v close their lane's partition; v itself is a
        // context node (never a candidate — pruning left no step that is
        // an ancestor of another).
        while ei < events.len() && events[ei].0 == v {
            let li = events[ei].1;
            ei += 1;
            let lane = &mut lanes[li as usize];
            lane.next += 1;
            lane.cur = v; // do not scan the boundary position itself
            match lane.steps.get(lane.next) {
                Some(&c2) => lane.bound = post[c2 as usize],
                None => {
                    // Last partition closed: the lane is done.
                    if let Some(pos) = active.iter().position(|&a| a == li) {
                        active.swap_remove(pos);
                    }
                }
            }
        }
        if active.is_empty() {
            if sleeping.is_empty() {
                break; // every lane finished
            }
            // Leapfrog to the earliest wake position (always ahead, and
            // always at or before that lane's next boundary event).
            debug_assert!(min_wake > v);
            v = min_wake;
            continue;
        }
        if gov.tick(1) {
            return;
        }
        // Scan position v for every active lane; one physical read,
        // attributed to the first lane that needed it.
        let post_v = post[v as usize];
        let is_attr = kind[v as usize] == attr;
        let mut touch: Option<u32> = None;
        let mut ai = 0usize;
        while ai < active.len() {
            let li = active[ai];
            let lane = &mut lanes[li as usize];
            if lane.cur == v {
                ai += 1; // this lane's boundary: next partition starts at v + 1
                continue;
            }
            if touch.is_none() {
                touch = Some(li);
            }
            if post_v > lane.bound {
                if !is_attr {
                    lane.result.push(v);
                }
                ai += 1;
            } else if variant != Variant::Basic {
                // v (and its whole subtree) precedes c: jump the
                // guaranteed block, underestimating by ≤ h (§3.3).
                let c = lane.steps[lane.next];
                let jump = post_v.saturating_sub(v).min(c - v - 1);
                lane.stats.nodes_skipped += u64::from(jump);
                if jump > 0 {
                    lane.wake = v + 1 + jump;
                    min_wake = min_wake.min(lane.wake);
                    sleeping.push(li);
                    active.swap_remove(ai);
                } else {
                    ai += 1;
                }
            } else {
                ai += 1;
            }
        }
        if let Some(li) = touch {
            lanes[li as usize].stats.nodes_scanned += 1;
        }
        v += 1;
    }
}

/// The merged descendant fragment scan: one forward cursor over the
/// shared list, opening each lane's partitions at its own (merged)
/// boundaries; per entry, every awake lane whose open partition contains
/// it tests the staircase bound, and the first miss puts the lane to
/// sleep until its next boundary — exactly the sequential on-list join,
/// lane by lane, with each entry read once.
pub(crate) fn descendant_list_scan(doc: &Doc, list: &[Pre], lanes: &mut [Lane]) {
    let post = doc.post_column();
    let n = doc.len() as Pre;
    let events = merged_boundaries(lanes);
    let mut ei = 0usize;
    let mut active: Vec<u32> = Vec::with_capacity(lanes.len());
    let mut gov = crate::governor::Ticker::ambient();
    for lane in lanes.iter_mut() {
        // Every partition is priced exactly like the sequential join's
        // partition loop, even the ones the cursor never reaches.
        lane.stats.partitions = lane.steps.len();
    }
    let mut j = 0usize;
    while j < list.len() {
        let p = list[j];
        // Boundaries at or before p open (or re-open) their lane's
        // partition; the boundary position itself is never a candidate.
        while ei < events.len() && events[ei].0 <= p {
            let (c, li) = events[ei];
            ei += 1;
            let lane = &mut lanes[li as usize];
            lane.cur = c;
            lane.bound = post[c as usize];
            lane.next += 1;
            if !(lane.open && lane.awake) {
                lane.open = true;
                lane.awake = true;
                active.push(li);
            }
        }
        if active.is_empty() {
            // Nobody is interested in the entries before the next
            // boundary: leapfrog the cursor there.
            match events.get(ei) {
                Some(&(next_c, _)) => {
                    j += list[j..].partition_point(|&q| q <= next_c);
                    continue;
                }
                None => break,
            }
        }
        if gov.tick(1) {
            return;
        }
        // One physical read of the entry, attributed to the first lane
        // that inspects it.
        let mut touched = false;
        let mut ai = 0usize;
        while ai < active.len() {
            let li = active[ai];
            let lane = &mut lanes[li as usize];
            if p <= lane.cur {
                ai += 1; // the lane's own boundary: its scan starts after it
                continue;
            }
            if !touched {
                touched = true;
                lane.stats.nodes_scanned += 1;
            }
            if post[p as usize] < lane.bound {
                lane.result.push(p);
                ai += 1;
            } else {
                // Z-region: no later entry in this lane's partition can be
                // a descendant; sleep until the lane's next boundary.
                let part_end = lane.steps.get(lane.next).copied().unwrap_or(n);
                let rest = list[j..]
                    .partition_point(|&q| q < part_end)
                    .saturating_sub(1);
                lane.stats.nodes_skipped += rest as u64;
                lane.awake = false;
                active.swap_remove(ai);
            }
        }
        j += 1;
    }
}

/// The merged ancestor fragment scan: partitions *end* at each lane's
/// boundaries; an entry below a lane's bound is preceding, so that lane
/// jumps the entry's guaranteed subtree block (sleeping until its wake
/// position) exactly as the sequential on-list join does.
pub(crate) fn ancestor_list_scan(doc: &Doc, list: &[Pre], lanes: &mut [Lane]) {
    let post = doc.post_column();
    let mut active: Vec<u32> = Vec::with_capacity(lanes.len());
    let mut sleeping: Vec<u32> = Vec::new();
    let mut gov = crate::governor::Ticker::ambient();
    for (i, lane) in lanes.iter_mut().enumerate() {
        lane.stats.partitions = lane.steps.len();
        if !lane.steps.is_empty() {
            lane.bound = post[lane.steps[0] as usize];
            lane.cur = Pre::MAX;
            active.push(i as u32);
        }
    }
    let mut j = 0usize;
    let mut min_wake: Pre = Pre::MAX;
    while j < list.len() {
        let p = list[j];
        // Sleepers whose jumped-over block ends at or before p rejoin.
        if min_wake <= p {
            min_wake = Pre::MAX;
            let mut si = 0usize;
            while si < sleeping.len() {
                let li = sleeping[si];
                let wake = lanes[li as usize].wake;
                if wake <= p {
                    active.push(li);
                    sleeping.swap_remove(si);
                } else {
                    min_wake = min_wake.min(wake);
                    si += 1;
                }
            }
        }
        if active.is_empty() {
            if sleeping.is_empty() {
                break; // every lane passed its last boundary
            }
            // Everyone is inside a jumped-over block: leapfrog to the
            // earliest wake position.
            j += list[j..].partition_point(|&q| q < min_wake);
            continue;
        }
        if gov.tick(1) {
            return;
        }
        let post_p = post[p as usize];
        let mut touched = false;
        let mut ai = 0usize;
        while ai < active.len() {
            let li = active[ai];
            let lane = &mut lanes[li as usize];
            // Advance past boundaries at or before p; the last partition
            // ends at the final boundary.
            let mut finished = false;
            while let Some(&c) = lane.steps.get(lane.next) {
                if c > p {
                    break;
                }
                lane.cur = c;
                lane.next += 1;
                match lane.steps.get(lane.next) {
                    Some(&c2) => lane.bound = post[c2 as usize],
                    None => finished = true,
                }
            }
            if finished {
                active.swap_remove(ai);
                continue;
            }
            if lane.cur == p {
                ai += 1; // the boundary node itself is never a candidate
                continue;
            }
            if !touched {
                touched = true;
                lane.stats.nodes_scanned += 1;
            }
            if post_p > lane.bound {
                lane.result.push(p);
                ai += 1;
            } else {
                // p precedes this lane's context node: every entry inside
                // p's subtree is preceding too — jump the block.
                let subtree_end = p + 1 + post_p.saturating_sub(p);
                let skipped = list[j + 1..].partition_point(|&q| q < subtree_end);
                lane.stats.nodes_skipped += skipped as u64;
                if skipped > 0 {
                    lane.wake = subtree_end;
                    min_wake = min_wake.min(lane.wake);
                    sleeping.push(li);
                    active.swap_remove(ai);
                } else {
                    ai += 1;
                }
            }
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure1, random_context, random_doc};
    use crate::{ancestor, descendant};

    const ALL: [Variant; 3] = [
        Variant::Basic,
        Variant::Skipping,
        Variant::EstimationSkipping,
    ];

    fn contexts_for(doc: &Doc, seed: u64, k: usize) -> Vec<Context> {
        (0..k)
            .map(|i| random_context(doc, seed ^ (i as u64).wrapping_mul(0x9E37), 20))
            .collect()
    }

    #[test]
    fn descendant_many_matches_sequential_per_query() {
        for seed in 0..15 {
            let doc = random_doc(seed, 400);
            let ctxs = contexts_for(&doc, seed ^ 0xBA7C4, 6);
            let refs: Vec<&Context> = ctxs.iter().collect();
            for variant in ALL {
                let mut scratch = Scratch::new();
                let batch = descendant_many(&doc, &refs, variant, &mut scratch);
                for (i, (got, stats)) in batch.iter().enumerate() {
                    let (want, wstats) = descendant(&doc, &ctxs[i], variant);
                    assert_eq!(got, &want, "seed {seed}, query {i}, {variant:?}");
                    assert_eq!(stats.result_size, wstats.result_size);
                    assert_eq!(stats.context_in, wstats.context_in);
                    assert_eq!(stats.context_out, wstats.context_out);
                }
            }
        }
    }

    #[test]
    fn ancestor_many_matches_sequential_per_query() {
        for seed in 0..15 {
            let doc = random_doc(seed, 400);
            let ctxs = contexts_for(&doc, seed ^ 0xA2C57, 6);
            let refs: Vec<&Context> = ctxs.iter().collect();
            for variant in ALL {
                let mut scratch = Scratch::new();
                let batch = ancestor_many(&doc, &refs, variant, &mut scratch);
                for (i, (got, stats)) in batch.iter().enumerate() {
                    let (want, wstats) = ancestor(&doc, &ctxs[i], variant);
                    assert_eq!(got, &want, "seed {seed}, query {i}, {variant:?}");
                    assert_eq!(stats.result_size, wstats.result_size);
                }
            }
        }
    }

    #[test]
    fn batch_never_touches_more_than_sequential() {
        for seed in 0..10 {
            let doc = random_doc(seed, 600);
            let ctxs = contexts_for(&doc, seed ^ 0x70C4ED, 8);
            let refs: Vec<&Context> = ctxs.iter().collect();
            for variant in ALL {
                let mut scratch = Scratch::new();
                let batch: u64 = descendant_many(&doc, &refs, variant, &mut scratch)
                    .iter()
                    .map(|(_, s)| s.nodes_touched())
                    .sum();
                let sequential: u64 = ctxs
                    .iter()
                    .map(|c| descendant(&doc, c, variant).1.nodes_touched())
                    .sum();
                assert!(
                    batch <= sequential,
                    "seed {seed}, {variant:?}: batch {batch} > sequential {sequential}"
                );
            }
        }
    }

    #[test]
    fn identical_contexts_share_one_pass() {
        let doc = random_doc(7, 2000);
        let root = Context::singleton(doc.root());
        let refs: Vec<&Context> = (0..8).map(|_| &root).collect();
        let mut scratch = Scratch::new();
        let batch = descendant_many(&doc, &refs, Variant::EstimationSkipping, &mut scratch);
        let (expected, seq_stats) = descendant(&doc, &root, Variant::EstimationSkipping);
        let total: u64 = batch.iter().map(|(_, s)| s.nodes_touched()).sum();
        // One physical pass serves all eight queries.
        assert_eq!(total, seq_stats.nodes_touched());
        assert!(total < 8 * seq_stats.nodes_touched());
        for (got, stats) in &batch {
            assert_eq!(got, &expected);
            assert_eq!(stats.result_size, expected.len());
        }
        // Exactly one lane did the work.
        assert_eq!(
            batch.iter().filter(|(_, s)| s.nodes_touched() > 0).count(),
            1
        );
    }

    #[test]
    fn overlapping_contexts_touch_strictly_less() {
        // Distinct contexts sharing most of their regions: nested chains.
        let doc = figure1();
        let a = Context::from_unsorted(vec![0]); // root: covers everything
        let b = Context::from_unsorted(vec![0, 4]); // prunes to root too? no: 4 inside 0 → pruned to [0]
        let c = Context::from_unsorted(vec![1, 4]); // b, e — disjoint from each other, inside root's region
        let refs: Vec<&Context> = vec![&a, &b, &c];
        let mut scratch = Scratch::new();
        for variant in ALL {
            let batch = descendant_many(&doc, &refs, variant, &mut scratch);
            let batch_total: u64 = batch.iter().map(|(_, s)| s.nodes_touched()).sum();
            let seq_total: u64 = [&a, &b, &c]
                .iter()
                .map(|ctx| descendant(&doc, ctx, variant).1.nodes_touched())
                .sum();
            assert!(
                batch_total < seq_total,
                "{variant:?}: {batch_total} !< {seq_total}"
            );
            for (i, ctx) in refs.iter().enumerate() {
                assert_eq!(batch[i].0, descendant(&doc, ctx, variant).0, "{variant:?}");
            }
        }
    }

    #[test]
    fn ancestor_many_shares_deep_chains() {
        // Deep contexts in the same subtree share long ancestor prefixes.
        let doc = random_doc(3, 2000);
        let max_level = doc.pres().map(|p| doc.level(p)).max().unwrap();
        let deep: Vec<Pre> = doc.pres().filter(|&p| doc.level(p) == max_level).collect();
        let ctxs: Vec<Context> = deep.iter().map(|&p| Context::singleton(p)).collect();
        let refs: Vec<&Context> = ctxs.iter().collect();
        let mut scratch = Scratch::new();
        let batch = ancestor_many(&doc, &refs, Variant::Skipping, &mut scratch);
        let mut seq_total = 0u64;
        for (i, ctx) in ctxs.iter().enumerate() {
            let (want, st) = ancestor(&doc, ctx, Variant::Skipping);
            assert_eq!(batch[i].0, want, "query {i}");
            seq_total += st.nodes_touched();
        }
        let batch_total: u64 = batch.iter().map(|(_, s)| s.nodes_touched()).sum();
        if ctxs.len() > 1 {
            assert!(
                batch_total < seq_total,
                "batch {batch_total} !< sequential {seq_total}"
            );
        }
    }

    #[test]
    fn empty_and_mixed_contexts() {
        let doc = figure1();
        let empty = Context::empty();
        let leaf = Context::singleton(2); // c: a leaf
        let refs: Vec<&Context> = vec![&empty, &leaf, &empty];
        let mut scratch = Scratch::new();
        for variant in ALL {
            let d = descendant_many(&doc, &refs, variant, &mut scratch);
            assert!(d[0].0.is_empty());
            assert_eq!(d[1].0, descendant(&doc, &leaf, variant).0);
            assert!(d[2].0.is_empty());
            let a = ancestor_many(&doc, &refs, variant, &mut scratch);
            assert!(a[0].0.is_empty());
            assert_eq!(a[1].0, ancestor(&doc, &leaf, variant).0);
        }
        let none: Vec<&Context> = Vec::new();
        assert!(descendant_many(&doc, &none, Variant::Basic, &mut scratch).is_empty());
    }

    #[test]
    fn pool_drops_buffers_beyond_the_capacity_budget() {
        let mut scratch = Scratch::new();
        // One over-budget buffer: dropped, not retained for the owner's
        // lifetime.
        scratch.put(Vec::with_capacity(POOLED_ENTRY_BUDGET + 1));
        assert_eq!(scratch.pooled(), 0, "over-budget buffer dropped");
        // Ordinary buffers still pool, and take() releases their share
        // of the budget again.
        scratch.put(Vec::with_capacity(1024));
        assert_eq!(scratch.pooled(), 1);
        let buf = scratch.take();
        assert_eq!(buf.capacity(), 1024);
        scratch.put(buf);
        assert_eq!(scratch.pooled(), 1);
    }

    #[test]
    fn fragment_many_matches_sequential_per_query() {
        use crate::{ancestor_on_list, descendant_on_list, TagIndex};
        for seed in 0..15 {
            let doc = random_doc(seed, 400);
            let idx = TagIndex::build(&doc);
            let ctxs = contexts_for(&doc, seed ^ 0x11F7, 6);
            let refs: Vec<&Context> = ctxs.iter().collect();
            for tag in ["p", "q", "r"] {
                let list = idx.fragment_by_name(&doc, tag);
                let mut scratch = Scratch::new();
                let batch = descendant_on_list_many(&doc, list, &refs, &mut scratch);
                for (i, (got, stats)) in batch.iter().enumerate() {
                    let (want, wstats) = descendant_on_list(&doc, list, &ctxs[i]);
                    assert_eq!(got, &want, "desc {tag} seed {seed} query {i}");
                    assert_eq!(stats.result_size, wstats.result_size);
                    assert_eq!(stats.context_in, wstats.context_in);
                    assert_eq!(stats.context_out, wstats.context_out);
                }
                let batch = ancestor_on_list_many(&doc, list, &refs, &mut scratch);
                for (i, (got, stats)) in batch.iter().enumerate() {
                    let (want, wstats) = ancestor_on_list(&doc, list, &ctxs[i]);
                    assert_eq!(got, &want, "anc {tag} seed {seed} query {i}");
                    assert_eq!(stats.result_size, wstats.result_size);
                }
            }
        }
    }

    #[test]
    fn fragment_many_never_touches_more_than_sequential() {
        use crate::{ancestor_on_list, descendant_on_list, TagIndex};
        for seed in 0..10 {
            let doc = random_doc(seed, 600);
            let idx = TagIndex::build(&doc);
            let list = idx.fragment_by_name(&doc, "p");
            let ctxs = contexts_for(&doc, seed ^ 0x5EED, 8);
            let refs: Vec<&Context> = ctxs.iter().collect();
            let mut scratch = Scratch::new();
            let d_batch: u64 = descendant_on_list_many(&doc, list, &refs, &mut scratch)
                .iter()
                .map(|(_, s)| s.nodes_touched())
                .sum();
            let d_seq: u64 = ctxs
                .iter()
                .map(|c| descendant_on_list(&doc, list, c).1.nodes_touched())
                .sum();
            assert!(d_batch <= d_seq, "seed {seed}: desc {d_batch} > {d_seq}");
            let a_batch: u64 = ancestor_on_list_many(&doc, list, &refs, &mut scratch)
                .iter()
                .map(|(_, s)| s.nodes_touched())
                .sum();
            let a_seq: u64 = ctxs
                .iter()
                .map(|c| ancestor_on_list(&doc, list, c).1.nodes_touched())
                .sum();
            assert!(a_batch <= a_seq, "seed {seed}: anc {a_batch} > {a_seq}");
        }
    }

    #[test]
    fn fragment_many_identical_contexts_share_one_cursor() {
        use crate::{descendant_on_list, TagIndex};
        let doc = random_doc(9, 1500);
        let idx = TagIndex::build(&doc);
        let list = idx.fragment_by_name(&doc, "q");
        let root = Context::singleton(doc.root());
        let refs: Vec<&Context> = (0..6).map(|_| &root).collect();
        let mut scratch = Scratch::new();
        let batch = descendant_on_list_many(&doc, list, &refs, &mut scratch);
        let (want, wstats) = descendant_on_list(&doc, list, &root);
        let total: u64 = batch.iter().map(|(_, s)| s.nodes_touched()).sum();
        assert_eq!(total, wstats.nodes_touched());
        for (got, _) in &batch {
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn horiz_many_matches_sequential_per_query() {
        use crate::{following, following_many, preceding, preceding_many};
        for seed in 0..15 {
            let doc = random_doc(seed, 400);
            let ctxs = contexts_for(&doc, seed ^ 0xF011, 6);
            let refs: Vec<&Context> = ctxs.iter().collect();
            let mut scratch = Scratch::new();
            let f_batch = following_many(&doc, &refs, &mut scratch);
            let p_batch = preceding_many(&doc, &refs, &mut scratch);
            let mut f_total = 0u64;
            let mut p_total = 0u64;
            let mut f_seq = 0u64;
            let mut p_seq = 0u64;
            for (i, ctx) in ctxs.iter().enumerate() {
                let (f_want, fs) = following(&doc, ctx);
                let (p_want, ps) = preceding(&doc, ctx);
                assert_eq!(f_batch[i].0, f_want, "following seed {seed} query {i}");
                assert_eq!(p_batch[i].0, p_want, "preceding seed {seed} query {i}");
                assert_eq!(f_batch[i].1.result_size, fs.result_size);
                assert_eq!(p_batch[i].1.result_size, ps.result_size);
                f_total += f_batch[i].1.nodes_touched();
                p_total += p_batch[i].1.nodes_touched();
                f_seq += fs.nodes_touched();
                p_seq += ps.nodes_touched();
            }
            // One physical pass each: batched totals never exceed the
            // sequential sums.
            assert!(
                f_total <= f_seq,
                "seed {seed}: following {f_total} > {f_seq}"
            );
            assert!(
                p_total <= p_seq,
                "seed {seed}: preceding {p_total} > {p_seq}"
            );
        }
    }

    #[test]
    fn horiz_many_single_lane_matches_sequential_stats() {
        use crate::{following, following_many, preceding, preceding_many};
        let doc = random_doc(4, 800);
        let deepest = doc.pres().max_by_key(|&p| doc.level(p)).unwrap();
        let ctx = Context::singleton(deepest);
        let mut scratch = Scratch::new();
        let f = following_many(&doc, &[&ctx], &mut scratch);
        let (fw, fs) = following(&doc, &ctx);
        assert_eq!(f[0].0, fw);
        assert_eq!(f[0].1, fs);
        let p = preceding_many(&doc, &[&ctx], &mut scratch);
        let (pw, ps) = preceding(&doc, &ctx);
        assert_eq!(p[0].0, pw);
        assert_eq!(p[0].1.nodes_touched(), ps.nodes_touched());
        assert_eq!(p[0].1.result_size, ps.result_size);
    }

    #[test]
    fn exists_many_matches_sequential_and_dedups() {
        use crate::{
            has_ancestor_in, has_ancestor_in_many, has_child_in, has_child_in_many,
            has_descendant_in, has_descendant_in_many, TagIndex,
        };
        let doc = random_doc(12, 500);
        let idx = TagIndex::build(&doc);
        let list = idx.fragment_by_name(&doc, "p");
        let a = random_context(&doc, 0xA11CE, 30);
        let b = random_context(&doc, 0xB0B, 30);
        let refs: Vec<&Context> = vec![&a, &b, &a, &a];
        let d = has_descendant_in_many(&doc, &refs, list);
        let an = has_ancestor_in_many(&doc, &refs, list);
        let ch = has_child_in_many(&doc, &refs, list);
        for (i, ctx) in [&a, &b, &a, &a].into_iter().enumerate() {
            assert_eq!(d[i].0, has_descendant_in(&doc, ctx, list).0, "query {i}");
            assert_eq!(an[i].0, has_ancestor_in(&doc, ctx, list).0, "query {i}");
            assert_eq!(ch[i].0, has_child_in(&doc, ctx, list).0, "query {i}");
        }
        // Duplicate candidate sets are probed once: incremental touches
        // land on the first occurrence only.
        assert_eq!(d[2].1.nodes_touched(), 0);
        assert_eq!(d[3].1.nodes_touched(), 0);
        assert_eq!(
            d[0].1.nodes_touched(),
            has_descendant_in(&doc, &a, list).1.nodes_touched()
        );
    }

    #[test]
    fn many_forms_reuse_the_scratch_pool() {
        use crate::{following_many, preceding_many, TagIndex};
        let doc = random_doc(21, 600);
        let idx = TagIndex::build(&doc);
        let list = idx.fragment_by_name(&doc, "r");
        let ctxs = contexts_for(&doc, 0xCAFE, 4);
        let refs: Vec<&Context> = ctxs.iter().collect();

        let mut scratch = Scratch::new();
        // Warm the pool once: every result the caller recycles and every
        // internal buffer comes back to the pool.
        for _ in 0..2 {
            for (c, _) in descendant_on_list_many(&doc, list, &refs, &mut scratch) {
                scratch.recycle(c);
            }
            for (c, _) in following_many(&doc, &refs, &mut scratch) {
                scratch.recycle(c);
            }
            for (c, _) in preceding_many(&doc, &refs, &mut scratch) {
                scratch.recycle(c);
            }
        }
        let steady = scratch.pooled();
        assert!(steady > 0, "pool must hold recycled buffers");
        // Steady state: another round allocates nothing new — the pool
        // level is unchanged after take/put cycles.
        for _ in 0..3 {
            for (c, _) in descendant_on_list_many(&doc, list, &refs, &mut scratch) {
                scratch.recycle(c);
            }
            for (c, _) in following_many(&doc, &refs, &mut scratch) {
                scratch.recycle(c);
            }
            for (c, _) in preceding_many(&doc, &refs, &mut scratch) {
                scratch.recycle(c);
            }
            assert_eq!(scratch.pooled(), steady, "steady-state pool level");
        }
    }

    #[test]
    fn scratch_reuses_buffers() {
        let mut scratch = Scratch::new();
        let mut buf = scratch.take();
        buf.extend([1, 2, 3]);
        let cap = buf.capacity();
        scratch.put(buf);
        assert_eq!(scratch.pooled(), 1);
        let again = scratch.take();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "allocation reused");
        scratch.recycle(Context::from_sorted(vec![4, 5]));
        assert_eq!(scratch.pooled(), 1);

        // Joins drain and refill the pool rather than allocating afresh.
        let doc = random_doc(11, 300);
        let ctx = random_context(&doc, 0x5C2A7C4, 10);
        let refs: Vec<&Context> = vec![&ctx];
        let out = descendant_many(&doc, &refs, Variant::EstimationSkipping, &mut scratch);
        assert!(scratch.pooled() >= 1, "pruned-step buffer returned");
        for (c, _) in out {
            scratch.recycle(c);
        }
        assert!(scratch.pooled() >= 2, "result buffer recycled");
    }
}
