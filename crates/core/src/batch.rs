//! Batched multi-context staircase joins: K queries, one plane pass.
//!
//! A server answering many queries over one document repeats the same
//! sequential scan of the pre/post plane once per query. But a pruned
//! context is just a sorted list of partition boundaries (§3.1), and
//! sorted boundary lists *merge*: exactly the observation that lets
//! Leapfrog Triejoin drive many sorted cursors through one coordinated
//! pass (Veldhuizen, ICDT 2013). [`descendant_many`] and
//! [`ancestor_many`] take K contexts, interleave their staircase
//! boundaries into one event list, and produce all K result vectors from
//! a **single left-to-right scan** of the `post`/`kind` columns. Per
//! query, the visited positions, pushes, and skip decisions are exactly
//! those of the sequential join ([`crate::descendant`] /
//! [`crate::ancestor`]) — results are bit-identical — but a plane
//! position shared by several partitions is *read once*.
//!
//! Consequently the returned [`StepStats`] count **incremental** cost:
//! each position touched by the scan is attributed to the first query
//! that needed it, so the per-query `nodes_touched()` values sum to the
//! number of physical reads. For overlapping contexts (the common case —
//! e.g. every query starting at the document root) that sum is strictly
//! below the sum of K sequential runs. Queries whose context is
//! *identical* to an earlier query's are recognised up front and share
//! the earlier result outright (one `memcpy`, zero touches).
//!
//! [`Scratch`] is the companion buffer pool: repeated batches reuse
//! result and context allocations instead of paying `Vec::new()` plus
//! regrowth per step.

use staircase_accel::{Context, Doc, NodeKind, Pre};

use crate::anc::ancestor_partitions;
use crate::desc::descendant_partitions;
use crate::prune::{prune_ancestor_into, prune_descendant_into};
use crate::stats::StepStats;
use crate::Variant;

/// A pool of `Vec<Pre>` buffers recycled across batch joins and steps.
///
/// Every result vector and pruned-context list a batch join needs is
/// [taken](Scratch::take) from the pool and — once its contents are no
/// longer needed — [put back](Scratch::put). A long-lived evaluator
/// reaches a steady state where no step allocates.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<Pre>>,
}

/// Upper bound on pooled buffers; beyond this, returned buffers are
/// dropped so a one-off huge batch cannot pin memory forever.
const MAX_POOLED: usize = 64;

impl Scratch {
    /// An empty pool.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Hands out a cleared buffer, reusing a pooled allocation when one
    /// is available.
    pub fn take(&mut self) -> Vec<Pre> {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool (its contents are discarded).
    pub fn put(&mut self, mut buf: Vec<Pre>) {
        buf.clear();
        if self.pool.len() < MAX_POOLED && buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Recycles a no-longer-needed node sequence's allocation.
    pub fn recycle(&mut self, ctx: Context) {
        self.put(ctx.into_vec());
    }

    /// How many buffers are currently pooled (for tests and metrics).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// Evaluates `contexts[k]/descendant::node()` for every `k` with **one**
/// scan of the plane.
///
/// Equivalent, query by query, to K calls of [`crate::descendant`]
/// (asserted by tests); see the module docs above for the shared-cost
/// statistics contract.
pub fn descendant_many(
    doc: &Doc,
    contexts: &[&Context],
    variant: Variant,
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    shared_pass(
        doc,
        contexts,
        scratch,
        prune_descendant_into,
        |doc, lanes| match lanes {
            // One unique context (e.g. every query starts at the root):
            // the sequential join's tight loops are strictly faster than
            // the merged scan, and the single pass serves everyone.
            [lane] => descendant_partitions(
                doc,
                &lane.steps,
                doc.len() as Pre,
                variant,
                &mut lane.result,
                &mut lane.stats,
            ),
            _ => descendant_scan(doc, lanes, variant),
        },
    )
}

/// Evaluates `contexts[k]/ancestor::node()` for every `k` with **one**
/// scan of the plane; the multi-query twin of [`crate::ancestor`].
pub fn ancestor_many(
    doc: &Doc,
    contexts: &[&Context],
    variant: Variant,
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    shared_pass(
        doc,
        contexts,
        scratch,
        prune_ancestor_into,
        |doc, lanes| match lanes {
            [lane] => ancestor_partitions(
                doc,
                &lane.steps,
                0,
                variant,
                &mut lane.result,
                &mut lane.stats,
            ),
            _ => ancestor_scan(doc, lanes, variant),
        },
    )
}

/// One query's slice of the shared scan.
struct Lane {
    /// Pruned staircase steps (partition boundaries), from the pool.
    steps: Vec<Pre>,
    /// Index of the next boundary not yet passed.
    next: usize,
    /// Pre rank of the currently open step (descendant scan).
    cur: Pre,
    /// Staircase boundary of the current partition (a postorder rank).
    bound: u32,
    /// Last position of the current copy phase, inclusive (descendant
    /// estimation skipping); positions `≤ cur` mean "no copy phase".
    copy_end: Pre,
    /// Descendant scan: `false` once skipping proved the rest of the
    /// partition empty. Ancestor scan: positions below `wake` are inside
    /// a jumped-over subtree block.
    awake: bool,
    /// First position the ancestor scan may inspect again after a jump.
    wake: Pre,
    /// `true` while a partition is open (descendant scan).
    open: bool,
    /// This lane's result, from the pool.
    result: Vec<Pre>,
    /// This lane's (incremental) statistics.
    stats: StepStats,
}

/// Dedups identical contexts, prunes each unique one, runs `scan` over
/// the unique lanes, and maps results back to the callers' order.
fn shared_pass(
    doc: &Doc,
    contexts: &[&Context],
    scratch: &mut Scratch,
    prune: impl Fn(&Doc, &Context, &mut Vec<Pre>),
    scan: impl FnOnce(&Doc, &mut [Lane]),
) -> Vec<(Context, StepStats)> {
    let k = contexts.len();
    // rep[i] = first index whose context is identical to contexts[i].
    let mut rep: Vec<usize> = (0..k).collect();
    for i in 0..k {
        for j in 0..i {
            if rep[j] == j && contexts[j].as_slice() == contexts[i].as_slice() {
                rep[i] = j;
                break;
            }
        }
    }

    // One lane per unique context; lane_of[i] = its lane index (unique
    // queries only).
    let mut lane_of = vec![usize::MAX; k];
    let mut lanes: Vec<Lane> = Vec::new();
    for i in 0..k {
        if rep[i] != i {
            continue;
        }
        lane_of[i] = lanes.len();
        let mut steps = scratch.take();
        prune(doc, contexts[i], &mut steps);
        lanes.push(Lane {
            next: 0,
            cur: Pre::MAX,
            bound: 0,
            copy_end: 0,
            awake: false,
            wake: 0,
            open: false,
            result: scratch.take(),
            stats: StepStats {
                context_in: contexts[i].len(),
                context_out: steps.len(),
                ..Default::default()
            },
            steps,
        });
    }

    scan(doc, &mut lanes);

    // Hand pruned-step buffers back; results leave the pool as Contexts
    // (their allocations come back via `Scratch::recycle` once the
    // caller is done with them).
    let mut finished: Vec<Option<(Context, StepStats)>> = lanes
        .into_iter()
        .map(|mut lane| {
            lane.stats.result_size = lane.result.len();
            scratch.put(std::mem::take(&mut lane.steps));
            Some((Context::from_sorted(lane.result), lane.stats))
        })
        .collect();

    // Duplicates clone from their (still pooled) representative first;
    // representatives are then moved out without copying.
    let mut out: Vec<Option<(Context, StepStats)>> = (0..k).map(|_| None).collect();
    for i in 0..k {
        if rep[i] == i {
            continue;
        }
        // Shared with an earlier identical context: copy the result,
        // report zero incremental touches.
        let (ctx, st) = finished[lane_of[rep[i]]]
            .as_ref()
            .expect("representatives are moved out after duplicates resolve");
        let shared = StepStats {
            context_in: st.context_in,
            context_out: st.context_out,
            result_size: st.result_size,
            partitions: st.partitions,
            ..Default::default()
        };
        out[i] = Some((ctx.clone(), shared));
    }
    for i in 0..k {
        if rep[i] == i {
            out[i] = finished[lane_of[i]].take();
        }
    }
    out.into_iter()
        .map(|o| o.expect("every query resolved to a lane or a duplicate"))
        .collect()
}

/// Merges every lane's pruned steps into one interleaved boundary list:
/// `(pre, lane)` pairs in plane order.
fn merged_boundaries(lanes: &[Lane]) -> Vec<(Pre, u32)> {
    let total: usize = lanes.iter().map(|l| l.steps.len()).sum();
    let mut events = Vec::with_capacity(total);
    for (i, lane) in lanes.iter().enumerate() {
        events.extend(lane.steps.iter().map(|&c| (c, i as u32)));
    }
    events.sort_unstable();
    events
}

/// The merged descendant scan: left to right over the plane, opening
/// each lane's partitions at its own boundaries, copying/scanning/
/// sleeping per lane exactly as the sequential join would. An active
/// list keeps per-position work proportional to the lanes that actually
/// need the position; regions nobody needs are leapfrogged.
fn descendant_scan(doc: &Doc, lanes: &mut [Lane], variant: Variant) {
    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;
    let n = doc.len() as Pre;

    // Pre-size results from the Equation-1 guaranteed-descendant counts.
    for lane in lanes.iter_mut() {
        lane.result.reserve(crate::desc::guaranteed_result_estimate(
            post,
            &lane.steps,
            n,
        ));
    }

    let events = merged_boundaries(lanes);
    let mut ei = 0usize;
    let mut active: Vec<u32> = Vec::with_capacity(lanes.len());
    let Some(&(mut v, _)) = events.first() else {
        return; // every context pruned to nothing
    };
    while v < n {
        // Phase 1: boundaries at v open a fresh partition for their lane.
        while ei < events.len() && events[ei].0 == v {
            let li = events[ei].1;
            ei += 1;
            let lane = &mut lanes[li as usize];
            lane.stats.partitions += 1;
            lane.cur = v;
            lane.bound = post[v as usize];
            lane.next += 1;
            let part_end = lane.steps.get(lane.next).copied().unwrap_or(n);
            lane.copy_end = match variant {
                Variant::EstimationSkipping => lane.bound.min(part_end.saturating_sub(1)),
                _ => v,
            };
            if !(lane.open && lane.awake) {
                lane.open = true;
                lane.awake = true;
                active.push(li);
            }
        }
        if active.is_empty() {
            // Nobody needs the region ahead: leapfrog to the next
            // boundary event (every sleeping lane wakes at its own).
            match events.get(ei) {
                Some(&(next_v, _)) => {
                    debug_assert!(next_v > v);
                    v = next_v;
                    continue;
                }
                None => break,
            }
        }
        // Phase 2: every active lane whose partition was open before v
        // inspects position v. The position is physically read at most
        // once; the read is attributed to the first lane that needed it.
        let mut touch: Option<(u32, bool)> = None;
        let mut ai = 0usize;
        while ai < active.len() {
            let li = active[ai];
            let lane = &mut lanes[li as usize];
            if lane.cur == v {
                ai += 1; // opened at v; its scan starts at v + 1
                continue;
            }
            if v <= lane.copy_end {
                // Copy phase: a guaranteed descendant, no comparison.
                if touch.is_none() {
                    touch = Some((li, true));
                }
                if kind[v as usize] != attr {
                    lane.result.push(v);
                }
                ai += 1;
            } else {
                if touch.is_none() {
                    touch = Some((li, false));
                }
                if post[v as usize] < lane.bound {
                    if kind[v as usize] != attr {
                        lane.result.push(v);
                    }
                    ai += 1;
                } else if variant != Variant::Basic {
                    // First miss: the rest of this lane's partition is a
                    // provably empty Z-region. Sleep until the lane's own
                    // next boundary (where phase 1 reopens it).
                    let part_end = lane.steps.get(lane.next).copied().unwrap_or(n);
                    lane.stats.nodes_skipped += u64::from(part_end - v - 1);
                    lane.awake = false;
                    active.swap_remove(ai);
                } else {
                    ai += 1;
                }
            }
        }
        match touch {
            Some((li, true)) => lanes[li as usize].stats.nodes_copied += 1,
            Some((li, false)) => lanes[li as usize].stats.nodes_scanned += 1,
            None => {}
        }
        v += 1;
    }
}

/// The merged ancestor scan: partitions *end* at each lane's boundaries;
/// subtree jumps (§3.3 / Equation 1) move a lane from the active to the
/// sleeping list until its wake position.
fn ancestor_scan(doc: &Doc, lanes: &mut [Lane], variant: Variant) {
    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;

    let events = merged_boundaries(lanes);
    let mut ei = 0usize;
    let mut active: Vec<u32> = Vec::with_capacity(lanes.len());
    let mut sleeping: Vec<u32> = Vec::new();
    for (i, lane) in lanes.iter_mut().enumerate() {
        if !lane.steps.is_empty() {
            lane.stats.partitions = lane.steps.len();
            lane.bound = post[lane.steps[0] as usize];
            active.push(i as u32);
        }
    }

    let mut v: Pre = 0;
    // Earliest wake position among sleepers: the sleeping list is only
    // scanned when someone can actually rejoin.
    let mut min_wake: Pre = Pre::MAX;
    loop {
        // Sleepers whose jumped-over block ends here rejoin the scan
        // (jumps never overshoot the lane's own boundary, so a sleeping
        // lane is always back before its partition closes).
        if min_wake <= v {
            min_wake = Pre::MAX;
            let mut si = 0usize;
            while si < sleeping.len() {
                let li = sleeping[si];
                let wake = lanes[li as usize].wake;
                if wake <= v {
                    active.push(li);
                    sleeping.swap_remove(si);
                } else {
                    min_wake = min_wake.min(wake);
                    si += 1;
                }
            }
        }
        // Boundaries at v close their lane's partition; v itself is a
        // context node (never a candidate — pruning left no step that is
        // an ancestor of another).
        while ei < events.len() && events[ei].0 == v {
            let li = events[ei].1;
            ei += 1;
            let lane = &mut lanes[li as usize];
            lane.next += 1;
            lane.cur = v; // do not scan the boundary position itself
            match lane.steps.get(lane.next) {
                Some(&c2) => lane.bound = post[c2 as usize],
                None => {
                    // Last partition closed: the lane is done.
                    if let Some(pos) = active.iter().position(|&a| a == li) {
                        active.swap_remove(pos);
                    }
                }
            }
        }
        if active.is_empty() {
            if sleeping.is_empty() {
                break; // every lane finished
            }
            // Leapfrog to the earliest wake position (always ahead, and
            // always at or before that lane's next boundary event).
            debug_assert!(min_wake > v);
            v = min_wake;
            continue;
        }
        // Scan position v for every active lane; one physical read,
        // attributed to the first lane that needed it.
        let post_v = post[v as usize];
        let is_attr = kind[v as usize] == attr;
        let mut touch: Option<u32> = None;
        let mut ai = 0usize;
        while ai < active.len() {
            let li = active[ai];
            let lane = &mut lanes[li as usize];
            if lane.cur == v {
                ai += 1; // this lane's boundary: next partition starts at v + 1
                continue;
            }
            if touch.is_none() {
                touch = Some(li);
            }
            if post_v > lane.bound {
                if !is_attr {
                    lane.result.push(v);
                }
                ai += 1;
            } else if variant != Variant::Basic {
                // v (and its whole subtree) precedes c: jump the
                // guaranteed block, underestimating by ≤ h (§3.3).
                let c = lane.steps[lane.next];
                let jump = post_v.saturating_sub(v).min(c - v - 1);
                lane.stats.nodes_skipped += u64::from(jump);
                if jump > 0 {
                    lane.wake = v + 1 + jump;
                    min_wake = min_wake.min(lane.wake);
                    sleeping.push(li);
                    active.swap_remove(ai);
                } else {
                    ai += 1;
                }
            } else {
                ai += 1;
            }
        }
        if let Some(li) = touch {
            lanes[li as usize].stats.nodes_scanned += 1;
        }
        v += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure1, random_context, random_doc};
    use crate::{ancestor, descendant};

    const ALL: [Variant; 3] = [
        Variant::Basic,
        Variant::Skipping,
        Variant::EstimationSkipping,
    ];

    fn contexts_for(doc: &Doc, seed: u64, k: usize) -> Vec<Context> {
        (0..k)
            .map(|i| random_context(doc, seed ^ (i as u64).wrapping_mul(0x9E37), 20))
            .collect()
    }

    #[test]
    fn descendant_many_matches_sequential_per_query() {
        for seed in 0..15 {
            let doc = random_doc(seed, 400);
            let ctxs = contexts_for(&doc, seed ^ 0xBA7C4, 6);
            let refs: Vec<&Context> = ctxs.iter().collect();
            for variant in ALL {
                let mut scratch = Scratch::new();
                let batch = descendant_many(&doc, &refs, variant, &mut scratch);
                for (i, (got, stats)) in batch.iter().enumerate() {
                    let (want, wstats) = descendant(&doc, &ctxs[i], variant);
                    assert_eq!(got, &want, "seed {seed}, query {i}, {variant:?}");
                    assert_eq!(stats.result_size, wstats.result_size);
                    assert_eq!(stats.context_in, wstats.context_in);
                    assert_eq!(stats.context_out, wstats.context_out);
                }
            }
        }
    }

    #[test]
    fn ancestor_many_matches_sequential_per_query() {
        for seed in 0..15 {
            let doc = random_doc(seed, 400);
            let ctxs = contexts_for(&doc, seed ^ 0xA2C57, 6);
            let refs: Vec<&Context> = ctxs.iter().collect();
            for variant in ALL {
                let mut scratch = Scratch::new();
                let batch = ancestor_many(&doc, &refs, variant, &mut scratch);
                for (i, (got, stats)) in batch.iter().enumerate() {
                    let (want, wstats) = ancestor(&doc, &ctxs[i], variant);
                    assert_eq!(got, &want, "seed {seed}, query {i}, {variant:?}");
                    assert_eq!(stats.result_size, wstats.result_size);
                }
            }
        }
    }

    #[test]
    fn batch_never_touches_more_than_sequential() {
        for seed in 0..10 {
            let doc = random_doc(seed, 600);
            let ctxs = contexts_for(&doc, seed ^ 0x70C4ED, 8);
            let refs: Vec<&Context> = ctxs.iter().collect();
            for variant in ALL {
                let mut scratch = Scratch::new();
                let batch: u64 = descendant_many(&doc, &refs, variant, &mut scratch)
                    .iter()
                    .map(|(_, s)| s.nodes_touched())
                    .sum();
                let sequential: u64 = ctxs
                    .iter()
                    .map(|c| descendant(&doc, c, variant).1.nodes_touched())
                    .sum();
                assert!(
                    batch <= sequential,
                    "seed {seed}, {variant:?}: batch {batch} > sequential {sequential}"
                );
            }
        }
    }

    #[test]
    fn identical_contexts_share_one_pass() {
        let doc = random_doc(7, 2000);
        let root = Context::singleton(doc.root());
        let refs: Vec<&Context> = (0..8).map(|_| &root).collect();
        let mut scratch = Scratch::new();
        let batch = descendant_many(&doc, &refs, Variant::EstimationSkipping, &mut scratch);
        let (expected, seq_stats) = descendant(&doc, &root, Variant::EstimationSkipping);
        let total: u64 = batch.iter().map(|(_, s)| s.nodes_touched()).sum();
        // One physical pass serves all eight queries.
        assert_eq!(total, seq_stats.nodes_touched());
        assert!(total < 8 * seq_stats.nodes_touched());
        for (got, stats) in &batch {
            assert_eq!(got, &expected);
            assert_eq!(stats.result_size, expected.len());
        }
        // Exactly one lane did the work.
        assert_eq!(
            batch.iter().filter(|(_, s)| s.nodes_touched() > 0).count(),
            1
        );
    }

    #[test]
    fn overlapping_contexts_touch_strictly_less() {
        // Distinct contexts sharing most of their regions: nested chains.
        let doc = figure1();
        let a = Context::from_unsorted(vec![0]); // root: covers everything
        let b = Context::from_unsorted(vec![0, 4]); // prunes to root too? no: 4 inside 0 → pruned to [0]
        let c = Context::from_unsorted(vec![1, 4]); // b, e — disjoint from each other, inside root's region
        let refs: Vec<&Context> = vec![&a, &b, &c];
        let mut scratch = Scratch::new();
        for variant in ALL {
            let batch = descendant_many(&doc, &refs, variant, &mut scratch);
            let batch_total: u64 = batch.iter().map(|(_, s)| s.nodes_touched()).sum();
            let seq_total: u64 = [&a, &b, &c]
                .iter()
                .map(|ctx| descendant(&doc, ctx, variant).1.nodes_touched())
                .sum();
            assert!(
                batch_total < seq_total,
                "{variant:?}: {batch_total} !< {seq_total}"
            );
            for (i, ctx) in refs.iter().enumerate() {
                assert_eq!(batch[i].0, descendant(&doc, ctx, variant).0, "{variant:?}");
            }
        }
    }

    #[test]
    fn ancestor_many_shares_deep_chains() {
        // Deep contexts in the same subtree share long ancestor prefixes.
        let doc = random_doc(3, 2000);
        let max_level = doc.pres().map(|p| doc.level(p)).max().unwrap();
        let deep: Vec<Pre> = doc.pres().filter(|&p| doc.level(p) == max_level).collect();
        let ctxs: Vec<Context> = deep.iter().map(|&p| Context::singleton(p)).collect();
        let refs: Vec<&Context> = ctxs.iter().collect();
        let mut scratch = Scratch::new();
        let batch = ancestor_many(&doc, &refs, Variant::Skipping, &mut scratch);
        let mut seq_total = 0u64;
        for (i, ctx) in ctxs.iter().enumerate() {
            let (want, st) = ancestor(&doc, ctx, Variant::Skipping);
            assert_eq!(batch[i].0, want, "query {i}");
            seq_total += st.nodes_touched();
        }
        let batch_total: u64 = batch.iter().map(|(_, s)| s.nodes_touched()).sum();
        if ctxs.len() > 1 {
            assert!(
                batch_total < seq_total,
                "batch {batch_total} !< sequential {seq_total}"
            );
        }
    }

    #[test]
    fn empty_and_mixed_contexts() {
        let doc = figure1();
        let empty = Context::empty();
        let leaf = Context::singleton(2); // c: a leaf
        let refs: Vec<&Context> = vec![&empty, &leaf, &empty];
        let mut scratch = Scratch::new();
        for variant in ALL {
            let d = descendant_many(&doc, &refs, variant, &mut scratch);
            assert!(d[0].0.is_empty());
            assert_eq!(d[1].0, descendant(&doc, &leaf, variant).0);
            assert!(d[2].0.is_empty());
            let a = ancestor_many(&doc, &refs, variant, &mut scratch);
            assert!(a[0].0.is_empty());
            assert_eq!(a[1].0, ancestor(&doc, &leaf, variant).0);
        }
        let none: Vec<&Context> = Vec::new();
        assert!(descendant_many(&doc, &none, Variant::Basic, &mut scratch).is_empty());
    }

    #[test]
    fn scratch_reuses_buffers() {
        let mut scratch = Scratch::new();
        let mut buf = scratch.take();
        buf.extend([1, 2, 3]);
        let cap = buf.capacity();
        scratch.put(buf);
        assert_eq!(scratch.pooled(), 1);
        let again = scratch.take();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "allocation reused");
        scratch.recycle(Context::from_sorted(vec![4, 5]));
        assert_eq!(scratch.pooled(), 1);

        // Joins drain and refill the pool rather than allocating afresh.
        let doc = random_doc(11, 300);
        let ctx = random_context(&doc, 0x5C2A7C4, 10);
        let refs: Vec<&Context> = vec![&ctx];
        let out = descendant_many(&doc, &refs, Variant::EstimationSkipping, &mut scratch);
        assert!(scratch.pooled() >= 1, "pruned-step buffer returned");
        for (c, _) in out {
            scratch.recycle(c);
        }
        assert!(scratch.pooled() >= 2, "result buffer recycled");
    }
}
