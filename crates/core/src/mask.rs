//! Chunked 64-lane bitmask kernels for the hot scan loops.
//!
//! Every scan-shaped operator in this crate ends in the same inner
//! loop: walk a pre-rank range (or a candidate list), test each
//! position against a kind/tag predicate, and push the survivors. The
//! test is a data-dependent branch per node — exactly the pattern the
//! hardware mispredicts on low- and mid-selectivity windows. The
//! kernels here evaluate the predicate **a `u64` word at a time**:
//!
//! 1. *Mask build*: 64 lanes of the predicate are folded into one
//!    `u64` (bit `i` set ⇔ lane `i` survives). For the ubiquitous
//!    `kind != Attribute` test over the byte-wide kind column this is
//!    a byte-wise SWAR compare (broadcast-XOR + zero-byte detect +
//!    movemask multiply) — eight positions per 64-bit load, no
//!    branches. A `#[cfg(stair_simd)]`-gated `std::simd` path swaps
//!    the SWAR word builder for a single 64-byte vector compare.
//! 2. *Select*: [`select_into`] materializes the set bits as pre
//!    ranks via `trailing_zeros` + clear-lowest-bit — one iteration
//!    per **survivor**, not per lane, and no per-element branch.
//!
//! Lanes are counted from the window's `from` offset, not from a
//! memory-aligned boundary, so an unaligned window head costs nothing;
//! a sub-word tail builds a partial mask over the remaining lanes.
//! The kernels only replace loops whose *counters are arithmetic* —
//! where `StepStats` charges the whole range regardless of the
//! per-position outcome — so masked and scalar paths report
//! byte-identical statistics (see the crate docs' "data layout & hot
//! loops" section).

use staircase_accel::{NodeKind, Pre, TagId};
use staircase_storage::TagBitmap;

/// The attribute kind byte every vertical-axis filter rejects.
const ATTR: u8 = NodeKind::Attribute as u8;

/// Broadcast of `0x01` to all eight byte lanes (SWAR broadcasts).
const LO: u64 = 0x0101_0101_0101_0101;
/// Broadcast of `0x7F` to all eight byte lanes (SWAR zero-detect).
const SEVENF: u64 = 0x7F7F_7F7F_7F7F_7F7F;
/// Movemask multiplier: gathers the eight `0x01`-lane bits into the
/// top byte (bit `i` of the product's top byte = lane `i`'s bit).
const GATHER: u64 = 0x0102_0408_1020_4080;

/// Bitmask of the eight bytes at `kind[base..base + 8]` that equal
/// `ATTR`: SWAR zero-byte detection on `x ^ broadcast(ATTR)`, reduced
/// to one bit per byte with a movemask multiply. Uses the carry-free
/// `!((x & 0x7F…) + 0x7F… | x | 0x7F…)` form — the shorter
/// `(x - LO) & !x & HI` detect has false positives from cross-byte
/// borrows (a `0x01` byte directly above a zero byte), exactly the
/// kind of bug the parity proptests exist to catch.
#[inline]
fn attr_byte8(kind: &[u8], base: usize) -> u8 {
    let x = u64::from_le_bytes(kind[base..base + 8].try_into().unwrap());
    let x = x ^ (ATTR as u64).wrapping_mul(LO);
    // High bit of each byte set ⇔ that byte of `x` is zero; per-byte
    // adds of 0x7F cannot carry out of their lane, so this is exact.
    let z = !(((x & SEVENF) + SEVENF) | x | SEVENF);
    (((z >> 7).wrapping_mul(GATHER)) >> 56) as u8
}

/// Builds the full 64-lane `kind != Attribute` mask for
/// `kind[base..base + 64]` (bit `i` ⇔ `kind[base + i]` is not an
/// attribute). SWAR on stable; one `u8x64` compare under
/// `--cfg stair_simd`.
#[inline]
#[cfg(not(stair_simd))]
fn non_attr_word64(kind: &[u8], base: usize) -> u64 {
    let mut word = 0u64;
    let mut l = 0;
    while l < 64 {
        word |= u64::from(!attr_byte8(kind, base + l)) << l;
        l += 8;
    }
    word
}

/// `std::simd` variant of the 64-lane mask builder: one vector
/// compare + bitmask extraction.
#[inline]
#[cfg(stair_simd)]
fn non_attr_word64(kind: &[u8], base: usize) -> u64 {
    use std::simd::cmp::SimdPartialEq;
    use std::simd::u8x64;
    let v = u8x64::from_slice(&kind[base..base + 64]);
    !v.simd_eq(u8x64::splat(ATTR)).to_bitmask()
}

/// Partial-word mask builder for a sub-word tail of `lanes` (< 64)
/// positions: SWAR over the full 8-byte chunks, scalar (but
/// branch-free) over the remainder.
#[inline]
fn non_attr_tail(kind: &[u8], base: usize, lanes: usize) -> u64 {
    debug_assert!(lanes < 64);
    let mut word = 0u64;
    let mut l = 0;
    while l + 8 <= lanes {
        word |= u64::from(!attr_byte8(kind, base + l)) << l;
        l += 8;
    }
    while l < lanes {
        word |= u64::from(kind[base + l] != ATTR) << l;
        l += 1;
    }
    word
}

/// Iterates the set-bit positions of `word`, lowest first.
///
/// The scalar view of the select step: `select_into` is this iterator
/// fused with the push loop.
#[inline]
pub fn iter_ones(word: u64) -> impl Iterator<Item = u32> {
    std::iter::successors((word != 0).then_some(word), |w| {
        let w = w & (w - 1);
        (w != 0).then_some(w)
    })
    .map(|w| w.trailing_zeros())
}

/// Pushes `base + i` for every set bit `i` of `word`, lowest first —
/// one iteration per survivor (`trailing_zeros` + clear-lowest-bit),
/// no per-lane branch.
#[inline]
pub fn select_into(base: Pre, mut word: u64, out: &mut Vec<Pre>) {
    while word != 0 {
        out.push(base + word.trailing_zeros());
        word &= word - 1;
    }
}

/// Pushes every `v` in `[from, to)` with `kind[v] != Attribute`, in
/// order — the masked form of the copy-phase filter loop shared by the
/// descendant/ancestor copy phases, the `following` suffix, and the
/// `preceding` guaranteed runs.
///
/// Result-identical to
/// `(from..to).filter(|&v| kind[v as usize] != ATTR)`; callers keep
/// their `StepStats` charge arithmetic (`to - from` positions), which
/// is exactly what the scalar loop charged.
pub fn select_non_attr(kind: &[u8], from: Pre, to: Pre, out: &mut Vec<Pre>) {
    let mut v = from as usize;
    let to = to as usize;
    debug_assert!(to <= kind.len());
    while v + 64 <= to {
        select_into(v as Pre, non_attr_word64(kind, v), out);
        v += 64;
    }
    if v < to {
        select_into(v as Pre, non_attr_tail(kind, v, to - v), out);
    }
}

/// Pushes every `v` in `[from, to)` satisfying `pred`, in order, via
/// 64-lane mask build + select. The predicate is evaluated for
/// **every** lane (branch-free accumulation), so this fits only loops
/// that already test every position — Basic-variant window scans,
/// never the data-dependent skipping scans.
pub fn select_where(from: Pre, to: Pre, out: &mut Vec<Pre>, pred: impl Fn(Pre) -> bool) {
    let mut v = from;
    while v < to {
        let lanes = (to - v).min(64);
        let mut word = 0u64;
        for l in 0..lanes {
            word |= u64::from(pred(v + l)) << l;
        }
        select_into(v, word, out);
        v += lanes;
    }
}

/// Filters a sorted candidate list through the `kind == want && tag ==
/// tid` name/kind test, 64 candidates per mask word (gathered loads,
/// branch-free mask build, per-survivor select). The masked form of
/// `apply_test`'s name-test filter.
pub fn select_tag_candidates(
    kind: &[u8],
    tags: &[TagId],
    want: u8,
    tid: TagId,
    candidates: &[Pre],
    out: &mut Vec<Pre>,
) {
    for chunk in candidates.chunks(64) {
        let mut word = 0u64;
        for (l, &v) in chunk.iter().enumerate() {
            let keep = (kind[v as usize] == want) & (tags[v as usize] == tid);
            word |= u64::from(keep) << l;
        }
        while word != 0 {
            out.push(chunk[word.trailing_zeros() as usize]);
            word &= word - 1;
        }
    }
}

/// Filters a sorted candidate list through a per-tag [`TagBitmap`]:
/// one bit-probe per candidate instead of the two gathered column
/// loads of [`select_tag_candidates`] — the path
/// [`crate::cost::DocStats::bitmap_worthwhile`] prices against the
/// plain masked filter. Result-identical to the name test the bitmap
/// was built from (bit `v` ⇔ element with the tag).
pub fn select_bitmap_candidates(bm: &TagBitmap, candidates: &[Pre], out: &mut Vec<Pre>) {
    for chunk in candidates.chunks(64) {
        let mut word = 0u64;
        for (l, &v) in chunk.iter().enumerate() {
            word |= u64::from(bm.get(v as usize)) << l;
        }
        while word != 0 {
            out.push(chunk[word.trailing_zeros() as usize]);
            word &= word - 1;
        }
    }
}

/// Filters a sorted candidate list through a `kind`-only test
/// (`keep_kind[kind[v]]` must hold), 64 candidates per word — the
/// masked form of `apply_test`'s kind-test filter. `keep` is a 256-bit
/// lookup of accepted kind bytes encoded as four words.
pub fn select_kind_candidates(kind: &[u8], keep: &KindSet, candidates: &[Pre], out: &mut Vec<Pre>) {
    for chunk in candidates.chunks(64) {
        let mut word = 0u64;
        for (l, &v) in chunk.iter().enumerate() {
            word |= u64::from(keep.contains(kind[v as usize])) << l;
        }
        while word != 0 {
            out.push(chunk[word.trailing_zeros() as usize]);
            word &= word - 1;
        }
    }
}

/// A branch-free set of accepted kind bytes (a 256-bit lookup table):
/// the mask kernels test membership with one shift instead of a match.
#[derive(Debug, Clone, Copy, Default)]
pub struct KindSet {
    words: [u64; 4],
}

impl KindSet {
    /// The empty set.
    pub const fn new() -> KindSet {
        KindSet { words: [0; 4] }
    }

    /// Adds a node kind to the set.
    pub const fn with(mut self, kind: NodeKind) -> KindSet {
        let b = kind as u8;
        self.words[(b >> 6) as usize] |= 1u64 << (b & 63);
        self
    }

    /// Membership test for a raw kind byte.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        (self.words[(b >> 6) as usize] >> (b & 63)) & 1 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_doc;
    use proptest::prelude::*;

    #[test]
    fn byte8_detects_attrs_exactly() {
        let kind = [0u8, 1, 2, 1, 3, 4, 1, 0, 1, 1];
        for base in 0..=2usize {
            let m = attr_byte8(&kind, base);
            for i in 0..8 {
                assert_eq!(
                    m >> i & 1 == 1,
                    kind[base + i] == ATTR,
                    "base {base} bit {i}"
                );
            }
        }
    }

    #[test]
    fn iter_ones_matches_select_into() {
        for word in [0u64, 1, 0x8000_0000_0000_0000, 0xDEAD_BEEF_CAFE_F00D] {
            let mut out = Vec::new();
            select_into(10, word, &mut out);
            let via_iter: Vec<Pre> = iter_ones(word).map(|i| 10 + i).collect();
            assert_eq!(out, via_iter);
            assert_eq!(out.len(), word.count_ones() as usize);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn select_non_attr_equals_scalar_filter(
            seed in 0u64..40,
            from_fr in 0.0f64..1.0,
            len in 0usize..400,
        ) {
            let doc = random_doc(seed, 600);
            let kind = doc.kind_column();
            let n = doc.len();
            let from = ((n as f64 * from_fr) as usize).min(n) as Pre;
            let to = (from as usize + len).min(n) as Pre;
            let want: Vec<Pre> =
                (from..to).filter(|&v| kind[v as usize] != ATTR).collect();
            let mut got = Vec::new();
            select_non_attr(kind, from, to, &mut got);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn select_where_equals_scalar_filter(seed in 0u64..20, to in 0u32..500) {
            let doc = random_doc(seed, 600);
            let post = doc.post_column();
            let to = to.min(doc.len() as Pre);
            let want: Vec<Pre> = (0..to).filter(|&v| post[v as usize].is_multiple_of(3)).collect();
            let mut got = Vec::new();
            select_where(0, to, &mut got, |v| post[v as usize].is_multiple_of(3));
            prop_assert_eq!(got, want);
        }

        #[test]
        fn tag_candidates_equal_scalar_filter(seed in 0u64..20) {
            let doc = random_doc(seed, 500);
            let (kind, tags) = (doc.kind_column(), doc.tag_column());
            let cands: Vec<Pre> = (0..doc.len() as Pre).step_by(3).collect();
            for name in ["p", "q", "nope"] {
                let Some(tid) = doc.tag_id(name) else { continue };
                let want: Vec<Pre> = cands
                    .iter()
                    .copied()
                    .filter(|&v| kind[v as usize] == 0 && tags[v as usize] == tid)
                    .collect();
                let mut got = Vec::new();
                select_tag_candidates(kind, tags, 0, tid, &cands, &mut got);
                prop_assert_eq!(got, want);
            }
        }

        #[test]
        fn bitmap_candidates_equal_tag_candidates(seed in 0u64..20, step in 1usize..5) {
            let doc = random_doc(seed, 500);
            let (kind, tags) = (doc.kind_column(), doc.tag_column());
            let element = NodeKind::Element as u8;
            let cands: Vec<Pre> = (0..doc.len() as Pre).step_by(step).collect();
            for name in ["p", "q"] {
                let Some(tid) = doc.tag_id(name) else { continue };
                let bm = TagBitmap::build(kind, element, tags, tid);
                let mut via_bitmap = Vec::new();
                select_bitmap_candidates(&bm, &cands, &mut via_bitmap);
                let mut via_columns = Vec::new();
                select_tag_candidates(kind, tags, element, tid, &cands, &mut via_columns);
                prop_assert_eq!(via_bitmap, via_columns);
            }
        }
    }

    #[test]
    fn unaligned_heads_and_subword_tails() {
        // Every (offset, length) combination around the word boundary:
        // the classic off-by-one surface.
        let doc = random_doc(3, 400);
        let kind = doc.kind_column();
        let n = doc.len() as Pre;
        for from in 0..130u32.min(n) {
            for len in [0u32, 1, 7, 8, 63, 64, 65, 127, 128, 129] {
                let to = (from + len).min(n);
                let want: Vec<Pre> = (from..to).filter(|&v| kind[v as usize] != ATTR).collect();
                let mut got = Vec::new();
                select_non_attr(kind, from, to, &mut got);
                assert_eq!(got, want, "from {from} len {len}");
            }
        }
    }

    #[test]
    fn kind_set_membership() {
        let set = KindSet::new().with(NodeKind::Text).with(NodeKind::Comment);
        assert!(set.contains(NodeKind::Text as u8));
        assert!(set.contains(NodeKind::Comment as u8));
        assert!(!set.contains(NodeKind::Element as u8));
        assert!(!set.contains(NodeKind::Attribute as u8));
    }
}
