//! Staircase join over *filtered node lists*: name-test pushdown and
//! tag-name fragmentation.
//!
//! §4.4 Experiment 3 pushes the name test through the staircase join: the
//! tree properties used by the join "are entirely based on preorder and
//! postorder ranks. Those properties remain valid for a subset of nodes."
//! §6 takes this further and proposes *fragmenting* the document by tag
//! name (Q1 dropped from 345 ms to 39 ms in the paper's first experiments).
//!
//! Both ideas need the same machinery: a pre-sorted list of the pre ranks
//! of all elements with a given tag ([`TagIndex`]), and join algorithms
//! that walk such a list instead of the contiguous plane
//! ([`descendant_on_list`], [`ancestor_on_list`]). Skipping carries over:
//! within a partition, the first list node outside the boundary proves the
//! rest of the partition empty, exactly as on the full plane.
//!
//! Since the adaptive-execution work the index is also **cracked**: a
//! [`TagIndex::lazy`] index starts with *no* fragment materialized, and
//! queries build them per tag on first touch. A query that only scans a
//! pre-*range* of a tag cracks just that range out of the columns
//! ([`TagIndex::fragment_window`]) and keeps the sorted piece; later
//! windows refine the coverage, and a tag that keeps getting touched is
//! promoted to its fully sorted fragment. Cold tags never pay a build.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use staircase_accel::{Context, Doc, NodeKind, Pre, TagId};
use staircase_storage::TagBitmap;

use crate::prune::{prune_ancestor, prune_descendant};
use crate::stats::StepStats;

/// How many window touches a tag sustains before the cracked pieces are
/// promoted to the fully sorted fragment. Hot tags therefore converge
/// within [`CRACK_CONVERGE_TOUCHES`] queries even when no single query
/// ever covers the whole plane.
pub const CRACK_CONVERGE_TOUCHES: u32 = 4;

/// One cracked piece of a tag's fragment: the sorted pre ranks of the
/// tag's elements inside `[lo, hi)`, materialized by some past window.
#[derive(Debug, Clone)]
struct Piece {
    lo: Pre,
    hi: Pre,
    entries: Vec<Pre>,
}

/// Per-tag state: the fully sorted fragment once promoted, else the
/// cracked pieces accumulated so far (disjoint, sorted by `lo`).
#[derive(Debug, Default)]
struct TagCell {
    full: OnceLock<Vec<Pre>>,
    pieces: Mutex<Vec<Piece>>,
    touches: AtomicU32,
}

impl Clone for TagCell {
    fn clone(&self) -> TagCell {
        let cell = TagCell {
            full: OnceLock::new(),
            pieces: Mutex::new(self.pieces.lock().expect("tag pieces lock").clone()),
            touches: AtomicU32::new(self.touches.load(Ordering::Relaxed)),
        };
        if let Some(f) = self.full.get() {
            let _ = cell.full.set(f.clone());
        }
        cell
    }
}

/// Per-tag fragments of the document: for every tag id, the pre ranks of
/// all elements carrying it, in document order.
///
/// [`TagIndex::build`] materializes every fragment with one pass over
/// the columns ("fragmentation by tag name", §6) — the eager form
/// [`warm`](TagIndex::warm_all)-style server paths use. The same
/// structure serves name-test pushdown, where the fragment *is*
/// `nametest(doc, tag)`.
///
/// [`TagIndex::lazy`] builds *nothing*: fragments are **cracked** out of
/// the columns as queries touch them. A whole-fragment touch
/// ([`TagIndex::fragment_by_name`]) materializes that one tag; a
/// range-limited touch ([`TagIndex::fragment_window`]) scans only the
/// requested pre range and keeps the sorted piece, so repeated queries
/// piecewise-refine hot tags to fully sorted fragments
/// (promotion after [`CRACK_CONVERGE_TOUCHES`] touches, or as soon as
/// the pieces cover the plane) while cold tags stay unbuilt.
///
/// Alongside each fragment the index caches a lazily built
/// [`TagBitmap`] (one bit per pre rank, set for elements with the
/// tag): fragments answer "walk every `t`-element in order", bitmaps
/// answer "which of *these* positions are `t`-elements" with one
/// bit-probe each — the masked name-test path of
/// [`crate::mask`]. A bitmap costs a full column pass to build, so it
/// is built on first touch only (callers gate on
/// [`crate::DocStats::bitmap_worthwhile`]).
#[derive(Debug)]
pub struct TagIndex {
    cells: Vec<TagCell>,
    bitmaps: Vec<OnceLock<TagBitmap>>,
    cracks: AtomicU64,
}

impl Clone for TagIndex {
    fn clone(&self) -> TagIndex {
        TagIndex {
            cells: self.cells.clone(),
            bitmaps: self.bitmaps.clone(),
            cracks: AtomicU64::new(self.cracks.load(Ordering::Relaxed)),
        }
    }
}

impl TagIndex {
    /// Builds the index with one pass over the document — every
    /// fragment fully materialized. Bitmaps are *not* built here — each
    /// materializes on first [`TagIndex::bitmap`] touch.
    pub fn build(doc: &Doc) -> TagIndex {
        let mut fragments = vec![Vec::new(); doc.tags().len()];
        let kinds = doc.kind_column();
        let tags = doc.tag_column();
        for v in doc.pres() {
            if kinds[v as usize] == NodeKind::Element as u8 {
                fragments[tags[v as usize] as usize].push(v);
            }
        }
        let idx = TagIndex::lazy(doc);
        for (cell, frag) in idx.cells.iter().zip(fragments) {
            let _ = cell.full.set(frag);
        }
        idx
    }

    /// An index with **no** fragment materialized: each cracks out of
    /// the columns on first touch.
    pub fn lazy(doc: &Doc) -> TagIndex {
        let ntags = doc.tags().len();
        TagIndex {
            cells: (0..ntags).map(|_| TagCell::default()).collect(),
            bitmaps: (0..ntags).map(|_| OnceLock::new()).collect(),
            cracks: AtomicU64::new(0),
        }
    }

    /// The per-tag bitmap for `tag`, built on first touch (one pass
    /// over the kind/tag columns) and cached for the index's lifetime;
    /// `None` for out-of-range tag ids.
    pub fn bitmap(&self, doc: &Doc, tag: TagId) -> Option<&TagBitmap> {
        self.bitmaps.get(tag as usize).map(|cell| {
            cell.get_or_init(|| {
                TagBitmap::build(
                    doc.kind_column(),
                    NodeKind::Element as u8,
                    doc.tag_column(),
                    tag,
                )
            })
        })
    }

    /// Whether `tag`'s bitmap has already materialized — the `built`
    /// input to [`crate::cost::DocStats::bitmap_worthwhile`]'s gate.
    pub fn bitmap_built(&self, tag: TagId) -> bool {
        self.bitmaps
            .get(tag as usize)
            .is_some_and(|c| c.get().is_some())
    }

    /// How many per-tag bitmaps have materialized (tests/metrics).
    pub fn bitmaps_built(&self) -> usize {
        self.bitmaps.iter().filter(|c| c.get().is_some()).count()
    }

    /// The fully materialized fragment for `tag`, building it on first
    /// touch (crediting any cracked pieces — only the uncovered gaps
    /// are scanned). Empty slice for unknown tags.
    pub fn fragment(&self, doc: &Doc, tag: TagId) -> &[Pre] {
        let Some(cell) = self.cells.get(tag as usize) else {
            return &[];
        };
        cell.touches.fetch_add(1, Ordering::Relaxed);
        self.ensure_full(doc, tag, cell)
    }

    /// The fragment for a tag *name*, built on first touch.
    pub fn fragment_by_name<'s>(&'s self, doc: &Doc, name: &str) -> &'s [Pre] {
        doc.tag_id(name)
            .map(|t| self.fragment(doc, t))
            .unwrap_or(&[])
    }

    /// The tag's elements with pre ranks in `[lo, hi)` — the cracked
    /// access path. A fully built fragment answers with a borrowed
    /// subslice; otherwise only the window's uncovered gaps are scanned
    /// out of the columns and the sorted piece is kept, so repeated
    /// windows piecewise-refine the fragment. After
    /// [`CRACK_CONVERGE_TOUCHES`] touches (or full coverage) the tag is
    /// promoted to its fully sorted fragment.
    pub fn fragment_window<'s>(
        &'s self,
        doc: &Doc,
        tag: TagId,
        lo: Pre,
        hi: Pre,
    ) -> Cow<'s, [Pre]> {
        let Some(cell) = self.cells.get(tag as usize) else {
            return Cow::Borrowed(&[]);
        };
        let hi = hi.min(doc.len() as Pre);
        let lo = lo.min(hi);
        let touches = cell.touches.fetch_add(1, Ordering::Relaxed) + 1;
        if cell.full.get().is_some()
            || touches >= CRACK_CONVERGE_TOUCHES
            || (lo == 0 && hi == doc.len() as Pre)
        {
            let full = self.ensure_full(doc, tag, cell);
            let a = full.partition_point(|&p| p < lo);
            let b = full.partition_point(|&p| p < hi);
            return Cow::Borrowed(&full[a..b]);
        }
        Cow::Owned(self.crack(doc, tag, cell, lo, hi))
    }

    /// The windowed form of [`TagIndex::fragment_window`] addressed by
    /// tag *name*.
    pub fn fragment_window_by_name<'s>(
        &'s self,
        doc: &Doc,
        name: &str,
        lo: Pre,
        hi: Pre,
    ) -> Cow<'s, [Pre]> {
        match doc.tag_id(name) {
            Some(t) => self.fragment_window(doc, t, lo, hi),
            None => Cow::Borrowed(&[]),
        }
    }

    /// Ensures `tag`'s fragment is fully materialized (the explicit
    /// warm path; also promotion's target).
    fn ensure_full<'s>(&'s self, doc: &Doc, tag: TagId, cell: &'s TagCell) -> &'s [Pre] {
        cell.full.get_or_init(|| {
            let mut pieces = cell.pieces.lock().expect("tag pieces lock");
            let full = assemble(doc, tag, &pieces, 0, doc.len() as Pre, &self.cracks);
            pieces.clear();
            pieces.shrink_to_fit();
            full
        })
    }

    /// Cracks the window `[lo, hi)` out of the columns: entries covered
    /// by existing pieces are reused, uncovered gaps are scanned and
    /// the merged piece kept. Promotes to the full fragment when the
    /// pieces end up covering the whole plane.
    fn crack(&self, doc: &Doc, tag: TagId, cell: &TagCell, lo: Pre, hi: Pre) -> Vec<Pre> {
        let mut pieces = cell.pieces.lock().expect("tag pieces lock");
        if let Some(full) = cell.full.get() {
            // A racing promoter won: serve from the full fragment.
            let a = full.partition_point(|&p| p < lo);
            let b = full.partition_point(|&p| p < hi);
            return full[a..b].to_vec();
        }
        let out = assemble(doc, tag, &pieces, lo, hi, &self.cracks);
        merge_piece(&mut pieces, lo, hi, &out);
        // Full coverage reached piecewise: promote.
        if pieces.len() == 1 && pieces[0].lo == 0 && pieces[0].hi >= doc.len() as Pre {
            let promoted = std::mem::take(&mut pieces[0].entries);
            pieces.clear();
            let _ = cell.full.set(promoted);
        }
        out
    }

    /// Whether `tag`'s fragment is fully materialized (tests/metrics —
    /// the cold-tags-stay-unbuilt assertion).
    pub fn fragment_built(&self, tag: TagId) -> bool {
        self.cells
            .get(tag as usize)
            .is_some_and(|c| c.full.get().is_some())
    }

    /// [`TagIndex::fragment_built`] addressed by tag name (`false` for
    /// names absent from the document).
    pub fn fragment_built_by_name(&self, doc: &Doc, name: &str) -> bool {
        doc.tag_id(name).is_some_and(|t| self.fragment_built(t))
    }

    /// `true` once `tag` has at least one cracked piece or its full
    /// fragment — i.e. some query touched it.
    pub fn fragment_touched(&self, tag: TagId) -> bool {
        self.cells.get(tag as usize).is_some_and(|c| {
            c.full.get().is_some() || !c.pieces.lock().expect("tag pieces lock").is_empty()
        })
    }

    /// How many window touches `tag` has seen (the cracking convergence
    /// metric: a hot tag is fully sorted within
    /// [`CRACK_CONVERGE_TOUCHES`]).
    pub fn fragment_touches(&self, tag: TagId) -> u32 {
        self.cells
            .get(tag as usize)
            .map(|c| c.touches.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// How many fragments are fully materialized.
    pub fn fragments_built(&self) -> usize {
        self.cells.iter().filter(|c| c.full.get().is_some()).count()
    }

    /// Total column positions scanned by crack/build passes so far —
    /// the work the lazy index actually paid, vs. the eager build's
    /// `tags × nodes`.
    pub fn crack_scan_work(&self) -> u64 {
        self.cracks.load(Ordering::Relaxed)
    }

    /// Fully materializes every fragment (the eager/server warm path).
    pub fn warm_all(&self, doc: &Doc) {
        for tag in 0..self.cells.len() {
            self.ensure_full(doc, tag as TagId, &self.cells[tag]);
        }
    }

    /// Fully materializes the named tags only — the server's
    /// configured-hot-set warm (`staircase-serve --warm-tags`). Unknown
    /// names are ignored.
    pub fn warm_tags(&self, doc: &Doc, names: &[&str]) {
        for name in names {
            if let Some(t) = doc.tag_id(name) {
                self.ensure_full(doc, t, &self.cells[t as usize]);
            }
        }
    }

    /// Number of distinct tags indexed.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the index covers no tags at all.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total pre ranks stored across materialized fragments and cracked
    /// pieces.
    pub fn total_nodes(&self) -> usize {
        self.cells
            .iter()
            .map(|c| match c.full.get() {
                Some(f) => f.len(),
                None => c
                    .pieces
                    .lock()
                    .expect("tag pieces lock")
                    .iter()
                    .map(|p| p.entries.len())
                    .sum(),
            })
            .sum()
    }
}

/// Collects `tag`'s elements with pre in `[lo, hi)`, reusing `pieces`
/// where they cover the window and scanning the columns only over the
/// uncovered gaps (each gap scan is charged to `cracks`).
fn assemble(
    doc: &Doc,
    tag: TagId,
    pieces: &[Piece],
    lo: Pre,
    hi: Pre,
    cracks: &AtomicU64,
) -> Vec<Pre> {
    let mut out = Vec::new();
    let mut cursor = lo;
    for piece in pieces {
        if piece.hi <= cursor {
            continue;
        }
        if piece.lo >= hi {
            break;
        }
        if piece.lo > cursor {
            scan_range(doc, tag, cursor, piece.lo.min(hi), &mut out, cracks);
        }
        let a = piece.entries.partition_point(|&p| p < cursor);
        let b = piece.entries.partition_point(|&p| p < hi);
        out.extend_from_slice(&piece.entries[a..b]);
        cursor = piece.hi.min(hi);
        if cursor >= hi {
            break;
        }
    }
    if cursor < hi {
        scan_range(doc, tag, cursor, hi, &mut out, cracks);
    }
    out
}

/// Scans the kind/tag columns over `[lo, hi)` for `tag`'s elements.
fn scan_range(doc: &Doc, tag: TagId, lo: Pre, hi: Pre, out: &mut Vec<Pre>, cracks: &AtomicU64) {
    let kinds = doc.kind_column();
    let tags = doc.tag_column();
    let element = NodeKind::Element as u8;
    for v in lo..hi {
        if kinds[v as usize] == element && tags[v as usize] == tag {
            out.push(v);
        }
    }
    cracks.fetch_add(u64::from(hi.saturating_sub(lo)), Ordering::Relaxed);
}

/// Replaces every piece overlapping (or touching) `[lo, hi)` with one
/// merged piece whose entries are the union; keeps the list disjoint
/// and sorted by `lo`.
fn merge_piece(pieces: &mut Vec<Piece>, lo: Pre, hi: Pre, window_entries: &[Pre]) {
    let start = pieces.partition_point(|p| p.hi < lo);
    let end = pieces.partition_point(|p| p.lo <= hi);
    let mut merged_lo = lo;
    let mut merged_hi = hi;
    let mut entries: Vec<Pre> = Vec::new();
    for piece in &pieces[start..end] {
        merged_lo = merged_lo.min(piece.lo);
        merged_hi = merged_hi.max(piece.hi);
        // Entries outside the new window survive; inside it the fresh
        // scan is authoritative (they are identical anyway).
        entries.extend(piece.entries.iter().copied().filter(|&p| p < lo || p >= hi));
    }
    entries.extend_from_slice(window_entries);
    entries.sort_unstable();
    pieces.splice(
        start..end,
        [Piece {
            lo: merged_lo,
            hi: merged_hi,
            entries,
        }],
    );
}

/// `context/descendant::tag` evaluated directly on a tag fragment:
/// equivalent to `nametest(staircase_join_desc(doc, context), tag)` but
/// touches only `tag`-elements.
pub fn descendant_on_list(doc: &Doc, list: &[Pre], context: &Context) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_descendant(doc, context);
    stats.context_out = pruned.len();
    let mut result = Vec::new();
    descendant_list_partitions(
        doc,
        list,
        pruned.as_slice(),
        doc.len() as Pre,
        &mut result,
        &mut stats,
    );
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Walks the partitions induced by a pruned step slice over `list`; the
/// last partition ends at `end` (exclusive). Factored out — and bounded
/// on the right — so the multi-context fragment join
/// ([`crate::descendant_on_list_many`]) can serve a single-lane batch
/// with exactly the sequential join's access pattern, and so the
/// parallel executor can hand each worker a *chunk* of steps whose final
/// partition ends where the next chunk's first step begins.
pub(crate) fn descendant_list_partitions(
    doc: &Doc,
    list: &[Pre],
    steps: &[Pre],
    end: Pre,
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
) {
    let post = doc.post_column();
    let mut gov = crate::governor::Ticker::ambient();
    let mut j = 0usize; // cursor into `list`
    for (i, &c) in steps.iter().enumerate() {
        let part_end = steps.get(i + 1).copied().unwrap_or(end);
        stats.partitions += 1;
        if gov.tick(1) {
            return;
        }
        let bound = post[c as usize];
        // First list entry inside the partition (list and steps both
        // ascend, so the cursor only moves forward).
        j += list[j..].partition_point(|&p| p <= c);
        while let Some(&p) = list.get(j) {
            if p >= part_end {
                break;
            }
            stats.nodes_scanned += 1;
            if gov.tick(1) {
                return;
            }
            if post[p as usize] < bound {
                result.push(p);
                j += 1;
            } else {
                // Z-region: no later list node in this partition can be a
                // descendant of c.
                let rest = list[j..]
                    .partition_point(|&p| p < part_end)
                    .saturating_sub(1);
                stats.nodes_skipped += rest as u64;
                break;
            }
        }
    }
}

/// `context/ancestor::tag` evaluated directly on a tag fragment.
///
/// The §3.3 ancestor skip carries over: a list node below the boundary is
/// preceding, so the cursor jumps past its guaranteed subtree block with a
/// binary search instead of a linear walk.
pub fn ancestor_on_list(doc: &Doc, list: &[Pre], context: &Context) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_ancestor(doc, context);
    stats.context_out = pruned.len();
    let mut result = Vec::new();
    ancestor_list_partitions(doc, list, pruned.as_slice(), 0, &mut result, &mut stats);
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// The ancestor twin of [`descendant_list_partitions`]: the first
/// partition starts at `start` (a chunked caller passes the previous
/// chunk's last step + 1).
pub(crate) fn ancestor_list_partitions(
    doc: &Doc,
    list: &[Pre],
    steps: &[Pre],
    start: Pre,
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
) {
    let post = doc.post_column();
    let mut gov = crate::governor::Ticker::ambient();
    let mut j = 0usize;
    let mut part_start: Pre = start;
    for &c in steps {
        stats.partitions += 1;
        if gov.tick(1) {
            return;
        }
        let bound = post[c as usize];
        j += list[j..].partition_point(|&p| p < part_start);
        while let Some(&p) = list.get(j) {
            if p >= c {
                break;
            }
            stats.nodes_scanned += 1;
            if gov.tick(1) {
                return;
            }
            if post[p as usize] > bound {
                result.push(p);
                j += 1;
            } else {
                // p precedes c: every list entry inside p's subtree is
                // preceding too — jump past the guaranteed block.
                let subtree_end = p + 1 + post[p as usize].saturating_sub(p);
                let skipped = list[j + 1..].partition_point(|&q| q < subtree_end);
                stats.nodes_skipped += skipped as u64;
                j += 1 + skipped;
            }
        }
        part_start = c + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_context, random_doc, reference};
    use crate::{ancestor, descendant, Variant};
    use staircase_accel::Axis;

    fn doc_with_tags() -> Doc {
        Doc::from_xml(
            "<site><open_auctions>\
             <open_auction><bidder><increase/></bidder><bidder><increase/></bidder></open_auction>\
             <open_auction><bidder><increase/></bidder></open_auction>\
             </open_auctions></site>",
        )
        .unwrap()
    }

    #[test]
    fn tag_index_partitions_elements() {
        let doc = doc_with_tags();
        let idx = TagIndex::build(&doc);
        assert_eq!(idx.total_nodes(), doc.kind_counts().0);
        let bidders = idx.fragment_by_name(&doc, "bidder");
        assert_eq!(bidders.len(), 3);
        assert!(bidders.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.fragment_by_name(&doc, "nonexistent").is_empty());
    }

    #[test]
    fn descendant_on_list_equals_nametest_after_join() {
        let doc = doc_with_tags();
        let idx = TagIndex::build(&doc);
        let ctx = Context::singleton(doc.root());
        let (full, _) = descendant(&doc, &ctx, Variant::EstimationSkipping);
        let late = full.name_test(&doc, "increase");
        let (pushed, _) = descendant_on_list(&doc, idx.fragment_by_name(&doc, "increase"), &ctx);
        assert_eq!(late, pushed);
    }

    #[test]
    fn ancestor_on_list_equals_nametest_after_join() {
        let doc = doc_with_tags();
        let idx = TagIndex::build(&doc);
        // Context: the increase elements.
        let increases: Context = idx
            .fragment_by_name(&doc, "increase")
            .iter()
            .copied()
            .collect();
        let (full, _) = ancestor(&doc, &increases, Variant::Skipping);
        let late = full.name_test(&doc, "bidder");
        let (pushed, _) = ancestor_on_list(&doc, idx.fragment_by_name(&doc, "bidder"), &increases);
        assert_eq!(late, pushed);
        assert_eq!(pushed.len(), 3);
    }

    #[test]
    fn pushdown_agrees_with_reference_on_random_docs() {
        for seed in 0..20 {
            let doc = random_doc(seed, 500);
            let idx = TagIndex::build(&doc);
            let ctx = random_context(&doc, seed ^ 0x9999, 20);
            for tag in ["p", "q", "r"] {
                let frag = idx.fragment_by_name(&doc, tag);
                let want_desc: Vec<Pre> = reference(&doc, &ctx, Axis::Descendant)
                    .into_iter()
                    .filter(|&v| doc.tag_name(v) == Some(tag) && doc.kind(v) == NodeKind::Element)
                    .collect();
                let (got_desc, _) = descendant_on_list(&doc, frag, &ctx);
                assert_eq!(
                    got_desc.as_slice(),
                    &want_desc[..],
                    "desc {tag} seed {seed}"
                );

                let want_anc: Vec<Pre> = reference(&doc, &ctx, Axis::Ancestor)
                    .into_iter()
                    .filter(|&v| doc.tag_name(v) == Some(tag) && doc.kind(v) == NodeKind::Element)
                    .collect();
                let (got_anc, _) = ancestor_on_list(&doc, frag, &ctx);
                assert_eq!(got_anc.as_slice(), &want_anc[..], "anc {tag} seed {seed}");
            }
        }
    }

    #[test]
    fn list_join_touches_only_fragment_nodes() {
        for seed in 0..10 {
            let doc = random_doc(seed, 800);
            let idx = TagIndex::build(&doc);
            let ctx = random_context(&doc, seed ^ 0xABAB, 10);
            let frag = idx.fragment_by_name(&doc, "p");
            let (_, stats) = descendant_on_list(&doc, frag, &ctx);
            assert!(
                stats.nodes_scanned <= frag.len() as u64,
                "seed {seed}: scanned {} of a {}-node fragment",
                stats.nodes_scanned,
                frag.len()
            );
        }
    }

    #[test]
    fn bitmap_cache_builds_lazily_and_agrees_with_fragments() {
        let doc = doc_with_tags();
        let idx = TagIndex::build(&doc);
        assert_eq!(idx.bitmaps_built(), 0, "no eager bitmap builds");
        let tid = doc.tag_id("bidder").unwrap();
        let bm = idx.bitmap(&doc, tid).unwrap();
        assert_eq!(idx.bitmaps_built(), 1);
        let frag = idx.fragment(&doc, tid);
        assert_eq!(bm.ones(), frag.len());
        let mut sel = Vec::new();
        bm.select_window(0, doc.len(), &mut sel);
        assert_eq!(sel.as_slice(), frag, "bitmap set bits = fragment");
        // Second touch reuses the cached build.
        assert!(std::ptr::eq(idx.bitmap(&doc, tid).unwrap(), bm));
        assert_eq!(idx.bitmaps_built(), 1);
        assert!(idx.bitmap(&doc, 9999).is_none());
    }

    #[test]
    fn lazy_index_builds_nothing_until_touched() {
        let doc = doc_with_tags();
        let idx = TagIndex::lazy(&doc);
        assert_eq!(idx.fragments_built(), 0);
        assert_eq!(idx.total_nodes(), 0);
        assert_eq!(idx.crack_scan_work(), 0);
        // First whole-fragment touch builds that one tag only.
        let bidders = idx.fragment_by_name(&doc, "bidder");
        assert_eq!(bidders.len(), 3);
        assert_eq!(idx.fragments_built(), 1);
        let cold = doc.tag_id("increase").unwrap();
        assert!(!idx.fragment_built(cold), "cold tags stay unbuilt");
        assert!(!idx.fragment_touched(cold));
        // The build scanned the plane once, not once per tag.
        assert_eq!(idx.crack_scan_work(), doc.len() as u64);
        // Lazy and eager agree for every tag.
        let eager = TagIndex::build(&doc);
        for (t, name) in doc.tags().iter().collect::<Vec<_>>() {
            assert_eq!(idx.fragment(&doc, t), eager.fragment(&doc, t), "tag {name}");
        }
    }

    #[test]
    fn window_cracks_only_the_touched_range() {
        let doc = random_doc(3, 600);
        let idx = TagIndex::lazy(&doc);
        let eager = TagIndex::build(&doc);
        let tid = doc.tag_id("p").unwrap();
        let full = eager.fragment(&doc, tid);
        let (lo, hi) = (100, 250);
        let window = idx.fragment_window(&doc, tid, lo, hi);
        let want: Vec<Pre> = full
            .iter()
            .copied()
            .filter(|&p| (lo..hi).contains(&p))
            .collect();
        assert_eq!(window.as_ref(), &want[..]);
        // Only the window's positions were scanned, and the tag is
        // cracked but not fully built.
        assert_eq!(idx.crack_scan_work(), u64::from(hi - lo));
        assert!(idx.fragment_touched(tid));
        assert!(!idx.fragment_built(tid));
        // A second, overlapping window reuses the covered part: the
        // extra scan work is the uncovered gap only.
        let window2 = idx.fragment_window(&doc, tid, 50, 200);
        let want2: Vec<Pre> = full
            .iter()
            .copied()
            .filter(|&p| (50..200).contains(&p))
            .collect();
        assert_eq!(window2.as_ref(), &want2[..]);
        assert_eq!(idx.crack_scan_work(), u64::from(hi - lo) + 50);
    }

    #[test]
    fn hot_tags_promote_to_fully_sorted_fragments() {
        let doc = random_doc(5, 800);
        let idx = TagIndex::lazy(&doc);
        let eager = TagIndex::build(&doc);
        let tid = doc.tag_id("q").unwrap();
        // Keep touching disjoint windows: by CRACK_CONVERGE_TOUCHES the
        // tag is promoted and answers with borrowed subslices.
        let n = doc.len() as Pre;
        for i in 0..CRACK_CONVERGE_TOUCHES + 1 {
            let lo = (i % 3) * 7;
            let out = idx.fragment_window(&doc, tid, lo, n / 2 + lo);
            let want: Vec<Pre> = eager
                .fragment(&doc, tid)
                .iter()
                .copied()
                .filter(|&p| (lo..n / 2 + lo).contains(&p))
                .collect();
            assert_eq!(out.as_ref(), &want[..], "touch {i}");
        }
        assert!(idx.fragment_built(tid), "hot tag converged");
        assert!(matches!(
            idx.fragment_window(&doc, tid, 0, n),
            Cow::Borrowed(_)
        ));
        assert_eq!(idx.fragment(&doc, tid), eager.fragment(&doc, tid));
        assert!(idx.fragment_touches(tid) > CRACK_CONVERGE_TOUCHES);
    }

    #[test]
    fn piecewise_coverage_promotes_without_a_full_touch() {
        let doc = doc_with_tags();
        let idx = TagIndex::lazy(&doc);
        let tid = doc.tag_id("bidder").unwrap();
        let n = doc.len() as Pre;
        // Two windows that together cover the plane: the second one
        // completes coverage and promotes, with no whole-plane scan
        // beyond the two windows themselves.
        idx.fragment_window(&doc, tid, 0, n / 2);
        assert!(!idx.fragment_built(tid));
        idx.fragment_window(&doc, tid, n / 2, n);
        assert!(idx.fragment_built(tid), "coverage-complete promotion");
        assert_eq!(idx.crack_scan_work(), u64::from(n));
        let eager = TagIndex::build(&doc);
        assert_eq!(idx.fragment(&doc, tid), eager.fragment(&doc, tid));
    }

    #[test]
    fn warm_tags_builds_exactly_the_named_set() {
        let doc = doc_with_tags();
        let idx = TagIndex::lazy(&doc);
        idx.warm_tags(&doc, &["bidder", "increase", "nonexistent"]);
        assert_eq!(idx.fragments_built(), 2);
        assert!(idx.fragment_built_by_name(&doc, "bidder"));
        assert!(idx.fragment_built_by_name(&doc, "increase"));
        assert!(!idx.fragment_built_by_name(&doc, "open_auction"));
        assert!(!idx.fragment_built_by_name(&doc, "nonexistent"));
        // warm_all finishes the rest.
        idx.warm_all(&doc);
        assert_eq!(idx.fragments_built(), idx.len());
        assert_eq!(idx.total_nodes(), doc.kind_counts().0);
    }

    #[test]
    fn cracked_windows_agree_with_eager_fragments_on_random_docs() {
        for seed in 0..12 {
            let doc = random_doc(seed, 500);
            let idx = TagIndex::lazy(&doc);
            let eager = TagIndex::build(&doc);
            let n = doc.len() as Pre;
            let mut st = 0x1234_5678_u64 ^ seed;
            let mut next = |m: Pre| {
                st ^= st << 13;
                st ^= st >> 7;
                st ^= st << 17;
                (st % u64::from(m.max(1))) as Pre
            };
            for tag in ["p", "q", "r"] {
                let tid = doc.tag_id(tag).unwrap();
                let full = eager.fragment(&doc, tid);
                for _ in 0..8 {
                    let a = next(n);
                    let b = a + next(n - a + 1);
                    let got = idx.fragment_window(&doc, tid, a, b);
                    let want: Vec<Pre> = full
                        .iter()
                        .copied()
                        .filter(|&p| (a..b).contains(&p))
                        .collect();
                    assert_eq!(got.as_ref(), &want[..], "seed {seed} tag {tag} [{a},{b})");
                }
            }
        }
    }

    #[test]
    fn empty_fragment_and_empty_context() {
        let doc = doc_with_tags();
        let (r, _) = descendant_on_list(&doc, &[], &Context::singleton(0));
        assert!(r.is_empty());
        let (r, _) = ancestor_on_list(&doc, &[], &Context::singleton(0));
        assert!(r.is_empty());
        let idx = TagIndex::build(&doc);
        let frag = idx.fragment_by_name(&doc, "bidder");
        let (r, _) = descendant_on_list(&doc, frag, &Context::empty());
        assert!(r.is_empty());
        let (r, _) = ancestor_on_list(&doc, frag, &Context::empty());
        assert!(r.is_empty());
    }

    use staircase_accel::{Doc, NodeKind};
}
