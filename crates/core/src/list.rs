//! Staircase join over *filtered node lists*: name-test pushdown and
//! tag-name fragmentation.
//!
//! §4.4 Experiment 3 pushes the name test through the staircase join: the
//! tree properties used by the join "are entirely based on preorder and
//! postorder ranks. Those properties remain valid for a subset of nodes."
//! §6 takes this further and proposes *fragmenting* the document by tag
//! name (Q1 dropped from 345 ms to 39 ms in the paper's first experiments).
//!
//! Both ideas need the same machinery: a pre-sorted list of the pre ranks
//! of all elements with a given tag ([`TagIndex`]), and join algorithms
//! that walk such a list instead of the contiguous plane
//! ([`descendant_on_list`], [`ancestor_on_list`]). Skipping carries over:
//! within a partition, the first list node outside the boundary proves the
//! rest of the partition empty, exactly as on the full plane.

use std::sync::OnceLock;

use staircase_accel::{Context, Doc, NodeKind, Pre, TagId};
use staircase_storage::TagBitmap;

use crate::prune::{prune_ancestor, prune_descendant};
use crate::stats::StepStats;

/// Per-tag fragments of the document: for every tag id, the pre ranks of
/// all elements carrying it, in document order.
///
/// Built once after loading ("fragmentation by tag name", §6); the same
/// structure serves name-test pushdown, where the fragment *is*
/// `nametest(doc, tag)`.
///
/// Alongside each fragment the index caches a lazily built
/// [`TagBitmap`] (one bit per pre rank, set for elements with the
/// tag): fragments answer "walk every `t`-element in order", bitmaps
/// answer "which of *these* positions are `t`-elements" with one
/// bit-probe each — the masked name-test path of
/// [`crate::mask`]. A bitmap costs a full column pass to build, so it
/// is built on first touch only (callers gate on
/// [`crate::DocStats::bitmap_worthwhile`]).
#[derive(Debug, Clone)]
pub struct TagIndex {
    fragments: Vec<Vec<Pre>>,
    bitmaps: Vec<OnceLock<TagBitmap>>,
}

impl TagIndex {
    /// Builds the index with one pass over the document. Bitmaps are
    /// *not* built here — each materializes on first
    /// [`TagIndex::bitmap`] touch.
    pub fn build(doc: &Doc) -> TagIndex {
        let mut fragments = vec![Vec::new(); doc.tags().len()];
        let kinds = doc.kind_column();
        let tags = doc.tag_column();
        for v in doc.pres() {
            if kinds[v as usize] == NodeKind::Element as u8 {
                fragments[tags[v as usize] as usize].push(v);
            }
        }
        let bitmaps = (0..fragments.len()).map(|_| OnceLock::new()).collect();
        TagIndex { fragments, bitmaps }
    }

    /// The per-tag bitmap for `tag`, built on first touch (one pass
    /// over the kind/tag columns) and cached for the index's lifetime;
    /// `None` for out-of-range tag ids.
    pub fn bitmap(&self, doc: &Doc, tag: TagId) -> Option<&TagBitmap> {
        self.bitmaps.get(tag as usize).map(|cell| {
            cell.get_or_init(|| {
                TagBitmap::build(
                    doc.kind_column(),
                    NodeKind::Element as u8,
                    doc.tag_column(),
                    tag,
                )
            })
        })
    }

    /// Whether `tag`'s bitmap has already materialized — the `built`
    /// input to [`crate::cost::DocStats::bitmap_worthwhile`]'s gate.
    pub fn bitmap_built(&self, tag: TagId) -> bool {
        self.bitmaps
            .get(tag as usize)
            .is_some_and(|c| c.get().is_some())
    }

    /// How many per-tag bitmaps have materialized (tests/metrics).
    pub fn bitmaps_built(&self) -> usize {
        self.bitmaps.iter().filter(|c| c.get().is_some()).count()
    }

    /// The fragment for `tag` (empty slice for unknown tags).
    pub fn fragment(&self, tag: TagId) -> &[Pre] {
        self.fragments
            .get(tag as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The fragment for a tag *name*.
    pub fn fragment_by_name<'s>(&'s self, doc: &Doc, name: &str) -> &'s [Pre] {
        doc.tag_id(name).map(|t| self.fragment(t)).unwrap_or(&[])
    }

    /// Size of the fragment for `tag` — the per-tag cardinality a
    /// selectivity-driven planner prices fragment joins from.
    pub fn fragment_len(&self, tag: TagId) -> usize {
        self.fragment(tag).len()
    }

    /// Number of distinct tags indexed.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// `true` if the document had no elements at all.
    pub fn is_empty(&self) -> bool {
        self.fragments.iter().all(Vec::is_empty)
    }

    /// Total pre ranks stored (= number of element nodes).
    pub fn total_nodes(&self) -> usize {
        self.fragments.iter().map(Vec::len).sum()
    }
}

/// `context/descendant::tag` evaluated directly on a tag fragment:
/// equivalent to `nametest(staircase_join_desc(doc, context), tag)` but
/// touches only `tag`-elements.
pub fn descendant_on_list(doc: &Doc, list: &[Pre], context: &Context) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_descendant(doc, context);
    stats.context_out = pruned.len();
    let mut result = Vec::new();
    descendant_list_partitions(
        doc,
        list,
        pruned.as_slice(),
        doc.len() as Pre,
        &mut result,
        &mut stats,
    );
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Walks the partitions induced by a pruned step slice over `list`; the
/// last partition ends at `end` (exclusive). Factored out — and bounded
/// on the right — so the multi-context fragment join
/// ([`crate::descendant_on_list_many`]) can serve a single-lane batch
/// with exactly the sequential join's access pattern, and so the
/// parallel executor can hand each worker a *chunk* of steps whose final
/// partition ends where the next chunk's first step begins.
pub(crate) fn descendant_list_partitions(
    doc: &Doc,
    list: &[Pre],
    steps: &[Pre],
    end: Pre,
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
) {
    let post = doc.post_column();
    let mut j = 0usize; // cursor into `list`
    for (i, &c) in steps.iter().enumerate() {
        let part_end = steps.get(i + 1).copied().unwrap_or(end);
        stats.partitions += 1;
        let bound = post[c as usize];
        // First list entry inside the partition (list and steps both
        // ascend, so the cursor only moves forward).
        j += list[j..].partition_point(|&p| p <= c);
        while let Some(&p) = list.get(j) {
            if p >= part_end {
                break;
            }
            stats.nodes_scanned += 1;
            if post[p as usize] < bound {
                result.push(p);
                j += 1;
            } else {
                // Z-region: no later list node in this partition can be a
                // descendant of c.
                let rest = list[j..]
                    .partition_point(|&p| p < part_end)
                    .saturating_sub(1);
                stats.nodes_skipped += rest as u64;
                break;
            }
        }
    }
}

/// `context/ancestor::tag` evaluated directly on a tag fragment.
///
/// The §3.3 ancestor skip carries over: a list node below the boundary is
/// preceding, so the cursor jumps past its guaranteed subtree block with a
/// binary search instead of a linear walk.
pub fn ancestor_on_list(doc: &Doc, list: &[Pre], context: &Context) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_ancestor(doc, context);
    stats.context_out = pruned.len();
    let mut result = Vec::new();
    ancestor_list_partitions(doc, list, pruned.as_slice(), 0, &mut result, &mut stats);
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// The ancestor twin of [`descendant_list_partitions`]: the first
/// partition starts at `start` (a chunked caller passes the previous
/// chunk's last step + 1).
pub(crate) fn ancestor_list_partitions(
    doc: &Doc,
    list: &[Pre],
    steps: &[Pre],
    start: Pre,
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
) {
    let post = doc.post_column();
    let mut j = 0usize;
    let mut part_start: Pre = start;
    for &c in steps {
        stats.partitions += 1;
        let bound = post[c as usize];
        j += list[j..].partition_point(|&p| p < part_start);
        while let Some(&p) = list.get(j) {
            if p >= c {
                break;
            }
            stats.nodes_scanned += 1;
            if post[p as usize] > bound {
                result.push(p);
                j += 1;
            } else {
                // p precedes c: every list entry inside p's subtree is
                // preceding too — jump past the guaranteed block.
                let subtree_end = p + 1 + post[p as usize].saturating_sub(p);
                let skipped = list[j + 1..].partition_point(|&q| q < subtree_end);
                stats.nodes_skipped += skipped as u64;
                j += 1 + skipped;
            }
        }
        part_start = c + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_context, random_doc, reference};
    use crate::{ancestor, descendant, Variant};
    use staircase_accel::Axis;

    fn doc_with_tags() -> Doc {
        Doc::from_xml(
            "<site><open_auctions>\
             <open_auction><bidder><increase/></bidder><bidder><increase/></bidder></open_auction>\
             <open_auction><bidder><increase/></bidder></open_auction>\
             </open_auctions></site>",
        )
        .unwrap()
    }

    #[test]
    fn tag_index_partitions_elements() {
        let doc = doc_with_tags();
        let idx = TagIndex::build(&doc);
        assert_eq!(idx.total_nodes(), doc.kind_counts().0);
        let bidders = idx.fragment_by_name(&doc, "bidder");
        assert_eq!(bidders.len(), 3);
        assert!(bidders.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.fragment_by_name(&doc, "nonexistent").is_empty());
    }

    #[test]
    fn descendant_on_list_equals_nametest_after_join() {
        let doc = doc_with_tags();
        let idx = TagIndex::build(&doc);
        let ctx = Context::singleton(doc.root());
        let (full, _) = descendant(&doc, &ctx, Variant::EstimationSkipping);
        let late = full.name_test(&doc, "increase");
        let (pushed, _) = descendant_on_list(&doc, idx.fragment_by_name(&doc, "increase"), &ctx);
        assert_eq!(late, pushed);
    }

    #[test]
    fn ancestor_on_list_equals_nametest_after_join() {
        let doc = doc_with_tags();
        let idx = TagIndex::build(&doc);
        // Context: the increase elements.
        let increases: Context = idx
            .fragment_by_name(&doc, "increase")
            .iter()
            .copied()
            .collect();
        let (full, _) = ancestor(&doc, &increases, Variant::Skipping);
        let late = full.name_test(&doc, "bidder");
        let (pushed, _) = ancestor_on_list(&doc, idx.fragment_by_name(&doc, "bidder"), &increases);
        assert_eq!(late, pushed);
        assert_eq!(pushed.len(), 3);
    }

    #[test]
    fn pushdown_agrees_with_reference_on_random_docs() {
        for seed in 0..20 {
            let doc = random_doc(seed, 500);
            let idx = TagIndex::build(&doc);
            let ctx = random_context(&doc, seed ^ 0x9999, 20);
            for tag in ["p", "q", "r"] {
                let frag = idx.fragment_by_name(&doc, tag);
                let want_desc: Vec<Pre> = reference(&doc, &ctx, Axis::Descendant)
                    .into_iter()
                    .filter(|&v| doc.tag_name(v) == Some(tag) && doc.kind(v) == NodeKind::Element)
                    .collect();
                let (got_desc, _) = descendant_on_list(&doc, frag, &ctx);
                assert_eq!(
                    got_desc.as_slice(),
                    &want_desc[..],
                    "desc {tag} seed {seed}"
                );

                let want_anc: Vec<Pre> = reference(&doc, &ctx, Axis::Ancestor)
                    .into_iter()
                    .filter(|&v| doc.tag_name(v) == Some(tag) && doc.kind(v) == NodeKind::Element)
                    .collect();
                let (got_anc, _) = ancestor_on_list(&doc, frag, &ctx);
                assert_eq!(got_anc.as_slice(), &want_anc[..], "anc {tag} seed {seed}");
            }
        }
    }

    #[test]
    fn list_join_touches_only_fragment_nodes() {
        for seed in 0..10 {
            let doc = random_doc(seed, 800);
            let idx = TagIndex::build(&doc);
            let ctx = random_context(&doc, seed ^ 0xABAB, 10);
            let frag = idx.fragment_by_name(&doc, "p");
            let (_, stats) = descendant_on_list(&doc, frag, &ctx);
            assert!(
                stats.nodes_scanned <= frag.len() as u64,
                "seed {seed}: scanned {} of a {}-node fragment",
                stats.nodes_scanned,
                frag.len()
            );
        }
    }

    #[test]
    fn bitmap_cache_builds_lazily_and_agrees_with_fragments() {
        let doc = doc_with_tags();
        let idx = TagIndex::build(&doc);
        assert_eq!(idx.bitmaps_built(), 0, "no eager bitmap builds");
        let tid = doc.tag_id("bidder").unwrap();
        let bm = idx.bitmap(&doc, tid).unwrap();
        assert_eq!(idx.bitmaps_built(), 1);
        let frag = idx.fragment(tid);
        assert_eq!(bm.ones(), frag.len());
        let mut sel = Vec::new();
        bm.select_window(0, doc.len(), &mut sel);
        assert_eq!(sel.as_slice(), frag, "bitmap set bits = fragment");
        // Second touch reuses the cached build.
        assert!(std::ptr::eq(idx.bitmap(&doc, tid).unwrap(), bm));
        assert_eq!(idx.bitmaps_built(), 1);
        assert!(idx.bitmap(&doc, 9999).is_none());
    }

    #[test]
    fn empty_fragment_and_empty_context() {
        let doc = doc_with_tags();
        let (r, _) = descendant_on_list(&doc, &[], &Context::singleton(0));
        assert!(r.is_empty());
        let (r, _) = ancestor_on_list(&doc, &[], &Context::singleton(0));
        assert!(r.is_empty());
        let idx = TagIndex::build(&doc);
        let frag = idx.fragment_by_name(&doc, "bidder");
        let (r, _) = descendant_on_list(&doc, frag, &Context::empty());
        assert!(r.is_empty());
        let (r, _) = ancestor_on_list(&doc, frag, &Context::empty());
        assert!(r.is_empty());
    }

    use staircase_accel::{Doc, NodeKind};
}
