//! Cost model: pricing candidate physical operators from document
//! statistics.
//!
//! The paper's central observation is that no single evaluator wins
//! everywhere — the staircase join dominates the partitioning axes
//! (§3–§4), tag-name fragmentation wins highly selective name tests
//! (§6), and even the tree-unaware SQL plan of Figure 3 is competitive
//! on tiny contexts. A planner choosing between them per step needs
//! *estimates* of what each candidate would touch, before any of them
//! runs. [`DocStats`] is that estimator: a cheap (one pass at most,
//! cached by the session layer) snapshot of the statistics every
//! estimate derives from —
//!
//! * node / element counts and the document height `h`,
//! * the average node depth (which by a standard identity equals the
//!   average subtree size minus one:
//!   `Σ_v |subtree(v)| = Σ_v (depth(v) + 1)`), giving the Equation-1
//!   context-window estimate for a context of known cardinality but
//!   unknown identity,
//! * per-tag fragment sizes, read in O(1) from the tag interner's
//!   element counts (maintained at document-loading time), so planning
//!   never forces the fragment index to be built.
//!
//! Costs are expressed in the unit the paper plots in Figure 11(a)/(c):
//! **nodes (or index entries) touched**. That makes an estimate directly
//! comparable to the [`StepStats::nodes_touched`](crate::StepStats)
//! (via [`StepStats::observed_cost`](crate::StepStats::observed_cost))
//! the join reports after the fact.
//!
//! The model is deliberately simple — every formula is a first-order
//! account of the corresponding algorithm's access pattern, not a fitted
//! curve. It only has to *rank* candidates correctly, and the candidates
//! differ by orders of magnitude exactly when the choice matters.

use staircase_accel::{Axis, Doc, NodeKind, TagId};

use crate::Variant;

/// Document statistics snapshot used to price candidate operators.
///
/// Build once per document with [`DocStats::from_doc`] (one pass over the
/// `level`/`kind` columns) and reuse for every plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DocStats {
    nodes: usize,
    elements: usize,
    attributes: usize,
    height: f64,
    avg_depth: f64,
}

impl DocStats {
    /// Gathers the statistics with one pass over the document's columns.
    pub fn from_doc(doc: &Doc) -> DocStats {
        let n = doc.len();
        let mut attributes = 0usize;
        let mut depth_sum = 0u64;
        let kinds = doc.kind_column();
        let attr = NodeKind::Attribute as u8;
        for v in doc.pres() {
            if kinds[v as usize] == attr {
                attributes += 1;
            }
            depth_sum += u64::from(doc.level(v));
        }
        DocStats {
            nodes: n,
            elements: doc.tags().total_elements(),
            attributes,
            height: f64::from(doc.height()),
            avg_depth: if n == 0 {
                0.0
            } else {
                depth_sum as f64 / n as f64
            },
        }
    }

    /// Total node count of the document.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Element node count.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Document height `h` (longest root-to-leaf path, in edges).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Average node depth `d̄`; the expected subtree size of a uniformly
    /// random node is `d̄ + 1` (sum both sides of `Σ_v |subtree(v)| =
    /// Σ_v (depth(v) + 1)` and divide by `n`).
    pub fn avg_depth(&self) -> f64 {
        self.avg_depth
    }

    /// Expected subtree size of one context node.
    pub fn avg_subtree(&self) -> f64 {
        self.avg_depth + 1.0
    }

    /// The §6 fragment size of `tag`: how many element nodes carry it
    /// (`None` — a name absent from the document — has an empty
    /// fragment).
    pub fn fragment_size(&self, doc: &Doc, tag: Option<TagId>) -> usize {
        tag.map(|t| doc.tags().element_count(t)).unwrap_or(0)
    }

    /// Fraction of window nodes surviving a node test that keeps
    /// `keep_count` of the document's nodes.
    pub fn selectivity(&self, keep_count: usize) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            keep_count as f64 / self.nodes as f64
        }
    }

    // ── Context-window estimates ────────────────────────────────────────

    /// Equation-1 context-window estimate for a `descendant` step: the
    /// expected total size of the context's descendant regions, *after*
    /// pruning (covered subtrees counted once). `from_root` marks the
    /// one case where the window is known exactly — an absolute path's
    /// first step, whose region is the whole document minus the root.
    pub fn descendant_window(&self, card: f64, from_root: bool) -> f64 {
        if from_root {
            return (self.nodes.saturating_sub(1)) as f64;
        }
        (card * self.avg_subtree()).min(self.nodes as f64)
    }

    /// Context-window estimate for an `ancestor` step: at most `d̄`
    /// ancestors per pruned context node, and never more than the
    /// document.
    pub fn ancestor_window(&self, card: f64) -> f64 {
        (card * self.avg_depth.max(1.0)).min(self.nodes as f64)
    }

    /// The *unpruned* window — what tree-unaware strategies (naive
    /// region queries, the Figure-3 SQL plan) pay, because without
    /// pruning every context node's region is visited even when covered
    /// by another's.
    pub fn unpruned_window(&self, card: f64, descendant: bool, from_root: bool) -> f64 {
        if descendant {
            if from_root {
                (self.nodes.saturating_sub(1)) as f64
            } else {
                card * self.avg_subtree()
            }
        } else {
            card * self.avg_depth.max(1.0)
        }
    }

    // ── Operator pricing (nodes / index entries touched) ────────────────

    /// The plain staircase join over the whole plane.
    ///
    /// * [`Variant::Basic`] (Algorithm 2) scans every partition to its
    ///   end — essentially the rest of the plane.
    /// * [`Variant::Skipping`] / [`Variant::EstimationSkipping`]
    ///   (Algorithms 3/4) touch at most `|window| + |context|` nodes plus
    ///   a height-bounded scan phase per partition (§3.3 / Equation 1).
    pub fn staircase_cost(&self, variant: Variant, card: f64, window: f64) -> f64 {
        let basic = (self.nodes as f64).max(window);
        match variant {
            Variant::Basic => basic,
            // Skipping never touches more than the basic scan does.
            Variant::Skipping | Variant::EstimationSkipping => {
                (window + card * (1.0 + self.height)).min(basic)
            }
        }
    }

    /// The on-list (fragment) staircase join: touches only fragment
    /// nodes — the in-window share of the fragment plus one binary
    /// search per partition — and, with `prescan` (§4.4 query-time
    /// pushdown), a full selection scan to *produce* the list first.
    pub fn fragment_cost(&self, fragment: usize, card: f64, window: f64, prescan: bool) -> f64 {
        let f = fragment as f64;
        let n = (self.nodes as f64).max(1.0);
        let in_window = f * (window / n).min(1.0);
        let probes = card * (f + 2.0).log2();
        let join = (in_window + probes).min(f + probes);
        if prescan {
            self.nodes as f64 + join
        } else {
            join
        }
    }

    /// The partitioned parallel staircase join: the serial work divided
    /// across workers, plus a per-worker spawn/merge overhead that makes
    /// parallelism lose on small documents.
    pub fn parallel_cost(&self, variant: Variant, card: f64, window: f64, threads: usize) -> f64 {
        let t = threads.max(1) as f64;
        self.staircase_cost(variant, card, window) / t + t * 256.0
    }

    /// The §3.1 naive strategy: one unpruned region scan per context
    /// node, plus sort/unique over everything produced.
    pub fn naive_cost(&self, unpruned_window: f64) -> f64 {
        unpruned_window * (1.0 + (unpruned_window + 2.0).log2() / 4.0)
    }

    /// The Figure-3 B-tree plan: with the Equation-1 window predicate it
    /// scans the (unpruned) window entries after one index probe per
    /// context node, then pays the plan's `sort distinct`; without the
    /// window hint the index scan degenerates to a full scan per context
    /// node.
    pub fn sql_cost(&self, card: f64, unpruned_window: f64, eq1_window: bool) -> f64 {
        let n = (self.nodes as f64).max(2.0);
        if !eq1_window {
            return card.max(1.0) * n;
        }
        let probes = card * n.log2();
        unpruned_window + probes + unpruned_window * (unpruned_window + 2.0).log2() / 4.0
    }

    /// The horizontal staircase scan (`following`/`preceding`): pruning
    /// collapses the context to one node (§3.1) and the region is a
    /// contiguous half-plane — on average half the document.
    pub fn horiz_cost(&self) -> f64 {
        self.nodes as f64 / 2.0
    }

    /// The engine-independent structural axes, priced from their actual
    /// access patterns in the evaluator.
    pub fn structural_cost(&self, axis: Axis, card: f64) -> f64 {
        let n = self.nodes as f64;
        let fanout = if self.elements == 0 {
            0.0
        } else {
            (self.nodes.saturating_sub(1)) as f64 / self.elements as f64
        };
        match axis {
            Axis::Child => card * fanout,
            Axis::Attribute => {
                let per_elem = if self.elements == 0 {
                    0.0
                } else {
                    self.attributes as f64 / self.elements as f64
                };
                card * (per_elem + 1.0)
            }
            // Sibling axes scan the whole plane once, whatever the context.
            Axis::FollowingSibling | Axis::PrecedingSibling => n,
            // self/parent touch the context only.
            _ => card,
        }
    }

    /// Cost of applying a node test as a separate filter pass over a
    /// join's base result of the given size.
    ///
    /// The pass itself runs through the chunked mask kernels
    /// ([`crate::mask`]) — same positions charged, fewer branches paid —
    /// so its *ranking* cost stays one unit per base row; masking
    /// changes the constant, not the asymptotics the planner ranks by.
    pub fn apply_test_cost(&self, base_rows: f64) -> f64 {
        base_rows
    }

    /// Cost of a name-test filter over `base_rows` candidates through a
    /// per-tag [`TagBitmap`](crate::TagBitmap): one bit-probe per
    /// candidate (cheaper than the two gathered column loads of the
    /// plain masked filter — `BITMAP_PROBE_DISCOUNT`), plus the full
    /// column pass that *builds* the bitmap when it has not
    /// materialized yet.
    pub fn bitmap_filter_cost(&self, base_rows: f64, built: bool) -> f64 {
        let probe = base_rows * BITMAP_PROBE_DISCOUNT;
        if built {
            probe
        } else {
            self.nodes as f64 + probe
        }
    }

    /// `true` when routing a name test over `base_rows` candidates
    /// through the lazily built per-tag bitmap beats the plain masked
    /// kind/tag filter, amortizing the build over this filter and the
    /// cached bitmap's future touches ([`BITMAP_AMORTIZE_TOUCHES`]).
    /// Small filters never trigger a build: a full column pass for a
    /// handful of probes is exactly the regression the lazy cache
    /// exists to avoid.
    pub fn bitmap_worthwhile(&self, base_rows: f64, built: bool) -> bool {
        if built {
            return true;
        }
        let amortized_build = self.nodes as f64 / BITMAP_AMORTIZE_TOUCHES;
        self.bitmap_filter_cost(base_rows, true) + amortized_build < self.apply_test_cost(base_rows)
    }

    /// Cost of a semijoin predicate probe (§3.3's empty-region argument:
    /// one fragment lookup per candidate) against a fragment of
    /// `fragment` nodes; `prescan` adds the query-time selection scan
    /// that produces the list when no prebuilt index is used.
    pub fn semijoin_cost(&self, candidates: f64, fragment: usize, prescan: bool) -> f64 {
        let probe = candidates * ((fragment as f64) + 2.0).log2();
        if prescan {
            self.nodes as f64 + probe
        } else {
            probe
        }
    }

    // ── Twig pricing (worst-case-optimal vs. step-at-a-time) ───────────

    /// Predicted **peak intermediate result** (materialized rows) of
    /// evaluating a twig region step-at-a-time: the frontier after each
    /// spine step, estimated from per-tag fragment sizes and
    /// containment selectivity exactly like the step planner does
    /// (existential predicates halve the frontier). This is the blowup
    /// a multiway plan avoids — the step plan must materialize and
    /// probe every one of these rows, so the peak is directly
    /// comparable to [`DocStats::twig_frontier_cost`]'s touched-work
    /// estimate.
    pub fn step_blowup_estimate(
        &self,
        context_card: f64,
        from_root: bool,
        legs: &[TwigLegCost],
    ) -> f64 {
        let n = (self.nodes as f64).max(1.0);
        let fanout = if self.elements == 0 {
            0.0
        } else {
            (self.nodes.saturating_sub(1)) as f64 / self.elements as f64
        };
        let mut rows = context_card.max(1.0);
        let mut peak = 0.0f64;
        for (i, leg) in legs.iter().enumerate() {
            let f = leg.fragment as f64;
            let reach = if leg.child_edge {
                rows * fanout
            } else {
                self.descendant_window(rows, from_root && i == 0)
            };
            let out = (reach * f / n).min(f);
            peak = peak.max(out);
            rows = out / 2.0f64.powi(leg.chains.len() as i32);
        }
        peak
    }

    /// Predicted touched-work of the leapfrog twig operator
    /// ([`crate::twig::twig_match`]) over the same region: bottom-up
    /// chain closure (multi-step chains walk every list above the
    /// last), pivot anchoring (the smallest spine fragment, one
    /// height-bounded upward sweep of gallops per candidate), and the
    /// on-list descent below the pivot. `Engine::auto` picks the twig
    /// plan only when [`DocStats::step_blowup_estimate`] exceeds this.
    pub fn twig_frontier_cost(&self, _context_card: f64, legs: &[TwigLegCost]) -> f64 {
        if legs.is_empty() {
            return 0.0;
        }
        let n = (self.nodes as f64).max(1.0);
        let h = self.height.max(1.0);
        let lg = |f: f64| (f + 2.0).log2();
        let mut cost = 0.0;
        // Chain closure: list j is walked with one gallop per entry
        // into list j+1; single-step chains close for free.
        for leg in legs {
            for chain in &leg.chains {
                for w in chain.windows(2) {
                    cost += w[0] as f64 * lg(w[1] as f64);
                }
            }
        }
        // Pivot anchoring: per candidate, the pivot's own chain probes
        // plus an ancestor sweep of at most `h` positions, each a
        // fragment-membership gallop and its leg's chain probes.
        let pivot_idx = (0..legs.len())
            .min_by_key(|&j| legs[j].fragment)
            .expect("non-empty leg set");
        let pivot = legs[pivot_idx].fragment as f64;
        let max_lg = legs
            .iter()
            .map(|l| lg(l.fragment as f64))
            .fold(1.0, f64::max);
        let chain_count: f64 = legs.iter().map(|l| l.chains.len() as f64).sum();
        cost += pivot * (h + 1.0) * (max_lg + chain_count);
        // Descent below the pivot: one on-list join per remaining leg.
        let mut card = pivot;
        for leg in &legs[pivot_idx + 1..] {
            let f = leg.fragment as f64;
            let reach = if leg.child_edge {
                card * self.avg_subtree().min(8.0)
            } else {
                (card * self.avg_subtree()).min(n)
            };
            cost += self.fragment_cost(leg.fragment, card, reach, false);
            card = (reach * f / n).min(f).max(1.0);
        }
        cost
    }

    /// `true` when a step estimated to touch `cost` nodes carries enough
    /// work to amortize handing morsels to a worker pool
    /// ([`MIN_FANOUT_COST`]). The planner records this as the step's
    /// parallelism hint; small steps stay sequential however wide the
    /// session's pool is, because the per-morsel handoff (queue push,
    /// wake, result concat — microseconds) would dominate their
    /// microsecond-scale scans.
    pub fn fanout_worthwhile(&self, cost: f64) -> bool {
        cost >= MIN_FANOUT_COST
    }
}

/// Per-leg inputs to the twig estimators
/// ([`DocStats::step_blowup_estimate`] /
/// [`DocStats::twig_frontier_cost`]): sizes only, so the planner can
/// price a twig region without resolving any fragment list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigLegCost {
    /// Fragment size of the leg's tag (element count for wildcards).
    pub fragment: usize,
    /// `true` for a `child::` edge from the previous leg (or context),
    /// `false` for `descendant::`.
    pub child_edge: bool,
    /// Per predicate chain, the fragment sizes of its steps, outermost
    /// first.
    pub chains: Vec<Vec<usize>>,
}

/// Minimum estimated touched-work (nodes / index entries, the cost
/// model's unit) before fanning a step's execution out across the worker
/// pool pays for the morsel handoff. Matches the executor-side floor the
/// core kernels enforce per morsel.
pub const MIN_FANOUT_COST: f64 = 4096.0;

/// Relative cost of one bitmap bit-probe vs. one plain masked kind/tag
/// test (one word load + shift against two gathered column loads).
pub const BITMAP_PROBE_DISCOUNT: f64 = 0.5;

/// How many future filter passes a lazily built per-tag bitmap's build
/// cost is amortized over when [`DocStats::bitmap_worthwhile`] decides
/// whether a first touch should pay the column pass. Sessions cache
/// bitmaps for their lifetime, so a hot tag's build is shared by every
/// later query that filters on it.
pub const BITMAP_AMORTIZE_TOUCHES: f64 = 8.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure1, random_doc};

    #[test]
    fn stats_reflect_the_document() {
        let doc = figure1();
        let s = DocStats::from_doc(&doc);
        assert_eq!(s.nodes(), 10);
        assert_eq!(s.elements(), 10);
        assert_eq!(s.height(), 3.0);
        // Levels are [0,1,2,1,1,2,3,3,2,3] → mean 1.8.
        assert!((s.avg_depth() - 1.8).abs() < 1e-9);
        assert!((s.avg_subtree() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn fragment_sizes_come_from_the_interner() {
        let doc = random_doc(3, 300);
        let s = DocStats::from_doc(&doc);
        for tag in ["p", "q", "r", "zzz"] {
            let id = doc.tag_id(tag);
            assert_eq!(
                s.fragment_size(&doc, id),
                id.map(|t| doc.elements_with_tag(t).len()).unwrap_or(0),
                "{tag}"
            );
        }
    }

    #[test]
    fn root_window_is_exact() {
        let doc = random_doc(1, 500);
        let s = DocStats::from_doc(&doc);
        assert_eq!(s.descendant_window(1.0, true), (doc.len() - 1) as f64);
        assert!(s.descendant_window(10.0, false) <= doc.len() as f64);
    }

    #[test]
    fn skipping_beats_basic_beats_nothing() {
        let doc = random_doc(2, 800);
        let s = DocStats::from_doc(&doc);
        let w = s.descendant_window(5.0, false);
        let est = s.staircase_cost(Variant::EstimationSkipping, 5.0, w);
        let basic = s.staircase_cost(Variant::Basic, 5.0, w);
        assert!(est <= basic, "estimation {est} > basic {basic}");
        assert!(est > 0.0);
    }

    #[test]
    fn small_fragments_undercut_the_full_scan() {
        // The §6 claim the planner banks on: a selective name test via a
        // prebuilt fragment is priced far below the plain join plus a
        // post-filter.
        let doc = random_doc(7, 2000);
        let s = DocStats::from_doc(&doc);
        let w = s.descendant_window(1.0, true);
        let staircase =
            s.staircase_cost(Variant::EstimationSkipping, 1.0, w) + s.apply_test_cost(w);
        let fragment = s.fragment_cost(25, 1.0, w, false);
        assert!(
            fragment * 4.0 < staircase,
            "fragment {fragment} not ≪ staircase {staircase}"
        );
        // …but the query-time prescan variant pays the selection scan.
        assert!(s.fragment_cost(25, 1.0, w, true) > s.nodes() as f64);
    }

    #[test]
    fn tree_unaware_plans_price_their_duplicates() {
        let doc = random_doc(9, 1500);
        let s = DocStats::from_doc(&doc);
        let card = 40.0;
        let pruned = s.descendant_window(card, false);
        let unpruned = s.unpruned_window(card, true, false);
        let staircase = s.staircase_cost(Variant::EstimationSkipping, card, pruned);
        assert!(s.naive_cost(unpruned) > staircase);
        assert!(s.sql_cost(card, unpruned, true) > staircase);
        assert!(s.sql_cost(card, unpruned, false) > s.sql_cost(card, unpruned, true));
    }

    #[test]
    fn bitmap_pricing_gates_the_lazy_build() {
        let doc = random_doc(5, 2000);
        let s = DocStats::from_doc(&doc);
        // A materialized bitmap always wins over the plain masked filter.
        assert!(s.bitmap_worthwhile(10.0, true));
        assert!(s.bitmap_filter_cost(100.0, true) < s.apply_test_cost(100.0));
        // A tiny filter never pays a fresh column pass…
        assert!(!s.bitmap_worthwhile(4.0, false));
        // …but a document-spanning one amortizes it.
        assert!(s.bitmap_worthwhile(s.nodes() as f64, false));
        // The un-built price includes the build pass.
        assert!(s.bitmap_filter_cost(10.0, false) > s.nodes() as f64);
    }

    #[test]
    fn skewed_twigs_price_the_leapfrog_below_the_blowup() {
        // A skew-shaped document: tall, with a huge first spine
        // fragment and a tiny second one — the step plan materializes
        // the whole first fragment, the leapfrog pivots on the tiny one.
        let s = DocStats {
            nodes: 2_000_000,
            elements: 1_900_000,
            attributes: 0,
            height: 14.0,
            avg_depth: 8.0,
        };
        let legs = [
            TwigLegCost {
                fragment: 600_000,
                child_edge: false,
                chains: vec![vec![500_000]],
            },
            TwigLegCost {
                fragment: 800,
                child_edge: false,
                chains: vec![vec![700]],
            },
        ];
        let blowup = s.step_blowup_estimate(1.0, true, &legs);
        let frontier = s.twig_frontier_cost(1.0, &legs);
        assert!(
            blowup > frontier,
            "skew: blowup {blowup} must exceed frontier {frontier}"
        );
        // …while a uniform region with comparable fragment sizes keeps
        // stepping cheaper than anchoring the pivot.
        let uniform = [
            TwigLegCost {
                fragment: 9_000,
                child_edge: false,
                chains: vec![vec![12_000]],
            },
            TwigLegCost {
                fragment: 11_000,
                child_edge: false,
                chains: vec![vec![8_000]],
            },
        ];
        let blowup = s.step_blowup_estimate(1.0, true, &uniform);
        let frontier = s.twig_frontier_cost(1.0, &uniform);
        assert!(
            blowup < frontier,
            "uniform: blowup {blowup} must stay below frontier {frontier}"
        );
    }

    #[test]
    fn twig_estimators_handle_degenerate_inputs() {
        let doc = random_doc(4, 600);
        let s = DocStats::from_doc(&doc);
        assert_eq!(s.twig_frontier_cost(1.0, &[]), 0.0);
        let legs = [TwigLegCost {
            fragment: 0,
            child_edge: true,
            chains: vec![],
        }];
        assert!(s.step_blowup_estimate(0.0, false, &legs) >= 0.0);
        assert!(s.twig_frontier_cost(0.0, &legs).is_finite());
        // Multi-step chains charge their closure walk.
        let deep = [TwigLegCost {
            fragment: 50,
            child_edge: false,
            chains: vec![vec![200, 100]],
        }];
        let shallow = [TwigLegCost {
            fragment: 50,
            child_edge: false,
            chains: vec![vec![100]],
        }];
        assert!(s.twig_frontier_cost(1.0, &deep) > s.twig_frontier_cost(1.0, &shallow));
    }

    #[test]
    fn empty_documents_price_to_zero_ish() {
        let s = DocStats::from_doc(&staircase_accel::EncodingBuilder::new().finish());
        assert_eq!(s.nodes(), 0);
        assert_eq!(s.descendant_window(1.0, true), 0.0);
        assert_eq!(s.selectivity(0), 0.0);
        assert!(s.structural_cost(Axis::Child, 1.0).is_finite());
    }
}
