//! Cost model: pricing candidate physical operators from document
//! statistics.
//!
//! The paper's central observation is that no single evaluator wins
//! everywhere — the staircase join dominates the partitioning axes
//! (§3–§4), tag-name fragmentation wins highly selective name tests
//! (§6), and even the tree-unaware SQL plan of Figure 3 is competitive
//! on tiny contexts. A planner choosing between them per step needs
//! *estimates* of what each candidate would touch, before any of them
//! runs. [`DocStats`] is that estimator: a cheap (one pass at most,
//! cached by the session layer) snapshot of the statistics every
//! estimate derives from —
//!
//! * node / element counts and the document height `h`,
//! * the average node depth (which by a standard identity equals the
//!   average subtree size minus one:
//!   `Σ_v |subtree(v)| = Σ_v (depth(v) + 1)`), giving the Equation-1
//!   context-window estimate for a context of known cardinality but
//!   unknown identity,
//! * per-tag fragment sizes, read in O(1) from the tag interner's
//!   element counts (maintained at document-loading time), so planning
//!   never forces the fragment index to be built.
//!
//! Costs are expressed in the unit the paper plots in Figure 11(a)/(c):
//! **nodes (or index entries) touched**. That makes an estimate directly
//! comparable to the [`StepStats::nodes_touched`](crate::StepStats)
//! (via [`StepStats::observed_cost`](crate::StepStats::observed_cost))
//! the join reports after the fact.
//!
//! The model is deliberately simple — every formula is a first-order
//! account of the corresponding algorithm's access pattern, not a fitted
//! curve. It only has to *rank* candidates correctly, and the candidates
//! differ by orders of magnitude exactly when the choice matters.

use std::sync::atomic::{AtomicU64, Ordering};

use staircase_accel::{Axis, Doc, NodeKind, TagId};

use crate::Variant;

/// Document statistics snapshot used to price candidate operators.
///
/// Build once per document with [`DocStats::from_doc`] (one pass over the
/// `level`/`kind` columns) and reuse for every plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DocStats {
    nodes: usize,
    elements: usize,
    attributes: usize,
    height: f64,
    avg_depth: f64,
}

impl DocStats {
    /// Gathers the statistics with one pass over the document's columns.
    pub fn from_doc(doc: &Doc) -> DocStats {
        let n = doc.len();
        let mut attributes = 0usize;
        let mut depth_sum = 0u64;
        let kinds = doc.kind_column();
        let attr = NodeKind::Attribute as u8;
        for v in doc.pres() {
            if kinds[v as usize] == attr {
                attributes += 1;
            }
            depth_sum += u64::from(doc.level(v));
        }
        DocStats {
            nodes: n,
            elements: doc.tags().total_elements(),
            attributes,
            height: f64::from(doc.height()),
            avg_depth: if n == 0 {
                0.0
            } else {
                depth_sum as f64 / n as f64
            },
        }
    }

    /// Total node count of the document.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Element node count.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Document height `h` (longest root-to-leaf path, in edges).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Average node depth `d̄`; the expected subtree size of a uniformly
    /// random node is `d̄ + 1` (sum both sides of `Σ_v |subtree(v)| =
    /// Σ_v (depth(v) + 1)` and divide by `n`).
    pub fn avg_depth(&self) -> f64 {
        self.avg_depth
    }

    /// Expected subtree size of one context node.
    pub fn avg_subtree(&self) -> f64 {
        self.avg_depth + 1.0
    }

    /// The §6 fragment size of `tag`: how many element nodes carry it
    /// (`None` — a name absent from the document — has an empty
    /// fragment).
    pub fn fragment_size(&self, doc: &Doc, tag: Option<TagId>) -> usize {
        tag.map(|t| doc.tags().element_count(t)).unwrap_or(0)
    }

    /// Fraction of window nodes surviving a node test that keeps
    /// `keep_count` of the document's nodes.
    pub fn selectivity(&self, keep_count: usize) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            keep_count as f64 / self.nodes as f64
        }
    }

    // ── Context-window estimates ────────────────────────────────────────

    /// Equation-1 context-window estimate for a `descendant` step: the
    /// expected total size of the context's descendant regions, *after*
    /// pruning (covered subtrees counted once). `from_root` marks the
    /// one case where the window is known exactly — an absolute path's
    /// first step, whose region is the whole document minus the root.
    pub fn descendant_window(&self, card: f64, from_root: bool) -> f64 {
        if from_root {
            return (self.nodes.saturating_sub(1)) as f64;
        }
        (card * self.avg_subtree()).min(self.nodes as f64)
    }

    /// Context-window estimate for an `ancestor` step: at most `d̄`
    /// ancestors per pruned context node, and never more than the
    /// document.
    pub fn ancestor_window(&self, card: f64) -> f64 {
        (card * self.avg_depth.max(1.0)).min(self.nodes as f64)
    }

    /// The *unpruned* window — what tree-unaware strategies (naive
    /// region queries, the Figure-3 SQL plan) pay, because without
    /// pruning every context node's region is visited even when covered
    /// by another's.
    pub fn unpruned_window(&self, card: f64, descendant: bool, from_root: bool) -> f64 {
        if descendant {
            if from_root {
                (self.nodes.saturating_sub(1)) as f64
            } else {
                card * self.avg_subtree()
            }
        } else {
            card * self.avg_depth.max(1.0)
        }
    }

    // ── Operator pricing (nodes / index entries touched) ────────────────

    /// The plain staircase join over the whole plane.
    ///
    /// * [`Variant::Basic`] (Algorithm 2) scans every partition to its
    ///   end — essentially the rest of the plane.
    /// * [`Variant::Skipping`] / [`Variant::EstimationSkipping`]
    ///   (Algorithms 3/4) touch at most `|window| + |context|` nodes plus
    ///   a height-bounded scan phase per partition (§3.3 / Equation 1).
    pub fn staircase_cost(&self, variant: Variant, card: f64, window: f64) -> f64 {
        let basic = (self.nodes as f64).max(window);
        match variant {
            Variant::Basic => basic,
            // Skipping never touches more than the basic scan does.
            Variant::Skipping | Variant::EstimationSkipping => {
                (window + card * (1.0 + self.height)).min(basic)
            }
        }
    }

    /// The on-list (fragment) staircase join: touches only fragment
    /// nodes — the in-window share of the fragment plus one binary
    /// search per partition — and, with `prescan` (§4.4 query-time
    /// pushdown), a full selection scan to *produce* the list first.
    pub fn fragment_cost(&self, fragment: usize, card: f64, window: f64, prescan: bool) -> f64 {
        let f = fragment as f64;
        let n = (self.nodes as f64).max(1.0);
        let in_window = f * (window / n).min(1.0);
        let probes = card * (f + 2.0).log2();
        let join = (in_window + probes).min(f + probes);
        if prescan {
            self.nodes as f64 + join
        } else {
            join
        }
    }

    /// The partitioned parallel staircase join: the serial work divided
    /// across workers, plus a per-worker spawn/merge overhead that makes
    /// parallelism lose on small documents.
    pub fn parallel_cost(&self, variant: Variant, card: f64, window: f64, threads: usize) -> f64 {
        let t = threads.max(1) as f64;
        self.staircase_cost(variant, card, window) / t + t * 256.0
    }

    /// The §3.1 naive strategy: one unpruned region scan per context
    /// node, plus sort/unique over everything produced.
    pub fn naive_cost(&self, unpruned_window: f64) -> f64 {
        unpruned_window * (1.0 + (unpruned_window + 2.0).log2() / 4.0)
    }

    /// The Figure-3 B-tree plan: with the Equation-1 window predicate it
    /// scans the (unpruned) window entries after one index probe per
    /// context node, then pays the plan's `sort distinct`; without the
    /// window hint the index scan degenerates to a full scan per context
    /// node.
    pub fn sql_cost(&self, card: f64, unpruned_window: f64, eq1_window: bool) -> f64 {
        let n = (self.nodes as f64).max(2.0);
        if !eq1_window {
            return card.max(1.0) * n;
        }
        let probes = card * n.log2();
        unpruned_window + probes + unpruned_window * (unpruned_window + 2.0).log2() / 4.0
    }

    /// The horizontal staircase scan (`following`/`preceding`): pruning
    /// collapses the context to one node (§3.1) and the region is a
    /// contiguous half-plane — on average half the document.
    pub fn horiz_cost(&self) -> f64 {
        self.nodes as f64 / 2.0
    }

    /// The engine-independent structural axes, priced from their actual
    /// access patterns in the evaluator.
    pub fn structural_cost(&self, axis: Axis, card: f64) -> f64 {
        let n = self.nodes as f64;
        let fanout = if self.elements == 0 {
            0.0
        } else {
            (self.nodes.saturating_sub(1)) as f64 / self.elements as f64
        };
        match axis {
            Axis::Child => card * fanout,
            Axis::Attribute => {
                let per_elem = if self.elements == 0 {
                    0.0
                } else {
                    self.attributes as f64 / self.elements as f64
                };
                card * (per_elem + 1.0)
            }
            // Sibling axes scan the whole plane once, whatever the context.
            Axis::FollowingSibling | Axis::PrecedingSibling => n,
            // self/parent touch the context only.
            _ => card,
        }
    }

    /// Cost of applying a node test as a separate filter pass over a
    /// join's base result of the given size.
    ///
    /// The pass itself runs through the chunked mask kernels
    /// ([`crate::mask`]) — same positions charged, fewer branches paid —
    /// so its *ranking* cost stays one unit per base row; masking
    /// changes the constant, not the asymptotics the planner ranks by.
    pub fn apply_test_cost(&self, base_rows: f64) -> f64 {
        base_rows
    }

    /// Cost of a name-test filter over `base_rows` candidates through a
    /// per-tag [`TagBitmap`](crate::TagBitmap): one bit-probe per
    /// candidate (cheaper than the two gathered column loads of the
    /// plain masked filter — `BITMAP_PROBE_DISCOUNT`), plus the full
    /// column pass that *builds* the bitmap when it has not
    /// materialized yet.
    pub fn bitmap_filter_cost(&self, base_rows: f64, built: bool) -> f64 {
        let probe = base_rows * BITMAP_PROBE_DISCOUNT;
        if built {
            probe
        } else {
            self.nodes as f64 + probe
        }
    }

    /// `true` when routing a name test over `base_rows` candidates
    /// through the lazily built per-tag bitmap beats the plain masked
    /// kind/tag filter, amortizing the build over this filter and the
    /// cached bitmap's future touches ([`BITMAP_AMORTIZE_TOUCHES`]).
    /// Small filters never trigger a build: a full column pass for a
    /// handful of probes is exactly the regression the lazy cache
    /// exists to avoid.
    pub fn bitmap_worthwhile(&self, base_rows: f64, built: bool) -> bool {
        if built {
            return true;
        }
        let amortized_build = self.nodes as f64 / BITMAP_AMORTIZE_TOUCHES;
        self.bitmap_filter_cost(base_rows, true) + amortized_build < self.apply_test_cost(base_rows)
    }

    /// Cost of a semijoin predicate probe (§3.3's empty-region argument:
    /// one fragment lookup per candidate) against a fragment of
    /// `fragment` nodes; `prescan` adds the query-time selection scan
    /// that produces the list when no prebuilt index is used.
    pub fn semijoin_cost(&self, candidates: f64, fragment: usize, prescan: bool) -> f64 {
        let probe = candidates * ((fragment as f64) + 2.0).log2();
        if prescan {
            self.nodes as f64 + probe
        } else {
            probe
        }
    }

    // ── Twig pricing (worst-case-optimal vs. step-at-a-time) ───────────

    /// Predicted **peak intermediate result** (materialized rows) of
    /// evaluating a twig region step-at-a-time: the frontier after each
    /// spine step, estimated from per-tag fragment sizes and
    /// containment selectivity exactly like the step planner does
    /// (existential predicates halve the frontier). This is the blowup
    /// a multiway plan avoids — the step plan must materialize and
    /// probe every one of these rows, so the peak is directly
    /// comparable to [`DocStats::twig_frontier_cost`]'s touched-work
    /// estimate.
    pub fn step_blowup_estimate(
        &self,
        context_card: f64,
        from_root: bool,
        legs: &[TwigLegCost],
    ) -> f64 {
        let n = (self.nodes as f64).max(1.0);
        let fanout = if self.elements == 0 {
            0.0
        } else {
            (self.nodes.saturating_sub(1)) as f64 / self.elements as f64
        };
        let mut rows = context_card.max(1.0);
        let mut peak = 0.0f64;
        for (i, leg) in legs.iter().enumerate() {
            let f = leg.fragment as f64;
            let reach = if leg.child_edge {
                rows * fanout
            } else {
                self.descendant_window(rows, from_root && i == 0)
            };
            let out = (reach * f / n).min(f);
            peak = peak.max(out);
            rows = out / 2.0f64.powi(leg.chains.len() as i32);
        }
        peak
    }

    /// Predicted touched-work of the leapfrog twig operator
    /// ([`crate::twig::twig_match`]) over the same region: bottom-up
    /// chain closure (multi-step chains walk every list above the
    /// last), pivot anchoring (the smallest spine fragment, one
    /// height-bounded upward sweep of gallops per candidate), and the
    /// on-list descent below the pivot. `Engine::auto` picks the twig
    /// plan only when [`DocStats::step_blowup_estimate`] exceeds this.
    pub fn twig_frontier_cost(&self, _context_card: f64, legs: &[TwigLegCost]) -> f64 {
        if legs.is_empty() {
            return 0.0;
        }
        let n = (self.nodes as f64).max(1.0);
        let h = self.height.max(1.0);
        let lg = |f: f64| (f + 2.0).log2();
        let mut cost = 0.0;
        // Chain closure: list j is walked with one gallop per entry
        // into list j+1; single-step chains close for free.
        for leg in legs {
            for chain in &leg.chains {
                for w in chain.windows(2) {
                    cost += w[0] as f64 * lg(w[1] as f64);
                }
            }
        }
        // Pivot anchoring: per candidate, the pivot's own chain probes
        // plus an ancestor sweep of at most `h` positions, each a
        // fragment-membership gallop and its leg's chain probes.
        let pivot_idx = (0..legs.len())
            .min_by_key(|&j| legs[j].fragment)
            .expect("non-empty leg set");
        let pivot = legs[pivot_idx].fragment as f64;
        let max_lg = legs
            .iter()
            .map(|l| lg(l.fragment as f64))
            .fold(1.0, f64::max);
        let chain_count: f64 = legs.iter().map(|l| l.chains.len() as f64).sum();
        cost += pivot * (h + 1.0) * (max_lg + chain_count);
        // Descent below the pivot: one on-list join per remaining leg.
        let mut card = pivot;
        for leg in &legs[pivot_idx + 1..] {
            let f = leg.fragment as f64;
            let reach = if leg.child_edge {
                card * self.avg_subtree().min(8.0)
            } else {
                (card * self.avg_subtree()).min(n)
            };
            cost += self.fragment_cost(leg.fragment, card, reach, false);
            card = (reach * f / n).min(f).max(1.0);
        }
        cost
    }

    /// `true` when a step estimated to touch `cost` nodes carries enough
    /// work to amortize handing morsels to a worker pool
    /// ([`MIN_FANOUT_COST`]). The planner records this as the step's
    /// parallelism hint; small steps stay sequential however wide the
    /// session's pool is, because the per-morsel handoff (queue push,
    /// wake, result concat — microseconds) would dominate their
    /// microsecond-scale scans.
    pub fn fanout_worthwhile(&self, cost: f64) -> bool {
        cost >= MIN_FANOUT_COST
    }
}

/// Runtime overlay over a [`DocStats`] snapshot: observed quantities
/// shadow the static estimates.
///
/// The static planner estimates the context cardinality of every step
/// from global averages — exactly the assumption skewed documents break
/// ("Skew Strikes Back"). Once a step has *run*, the frontier
/// cardinality is not an estimate any more: the executor hands the
/// actual context list size (and the step's
/// [`StepStats::observed_cost`](crate::StepStats::observed_cost)) to a
/// `RuntimeStats`, and every window/operator formula below re-prices
/// with the observed value where the static path would have used the
/// Equation-1 guess. A [`Calibrator`] factor (session-lifetime, fitted
/// from real seek counts) scales the twig constants the same way.
///
/// The overlay borrows the base snapshot; building one is free, so the
/// adaptive executor constructs a fresh overlay at every step boundary.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeStats<'a> {
    base: &'a DocStats,
    /// Observed context cardinality for the next step — exact, not the
    /// planner's estimate.
    observed_card: f64,
    /// Session-lifetime multiplier on the twig seek constants (1.0
    /// until the calibrator has seen real seek counts).
    twig_seek_factor: f64,
}

impl<'a> RuntimeStats<'a> {
    /// Overlays `base` with an observed frontier cardinality.
    pub fn new(base: &'a DocStats, observed_card: f64) -> RuntimeStats<'a> {
        RuntimeStats {
            base,
            observed_card,
            twig_seek_factor: 1.0,
        }
    }

    /// Applies a [`Calibrator`]'s fitted twig-seek factor.
    pub fn calibrated(mut self, calibrator: &Calibrator) -> RuntimeStats<'a> {
        self.twig_seek_factor = calibrator.twig_seek_factor();
        self
    }

    /// The underlying static snapshot.
    pub fn base(&self) -> &DocStats {
        self.base
    }

    /// The observed frontier cardinality shadowing the estimate.
    pub fn card(&self) -> f64 {
        self.observed_card
    }

    /// Equation-1 descendant window, from the *observed* cardinality.
    pub fn descendant_window(&self, from_root: bool) -> f64 {
        self.base.descendant_window(self.observed_card, from_root)
    }

    /// Ancestor window, from the *observed* cardinality.
    pub fn ancestor_window(&self) -> f64 {
        self.base.ancestor_window(self.observed_card)
    }

    /// Unpruned window, from the *observed* cardinality.
    pub fn unpruned_window(&self, descendant: bool, from_root: bool) -> f64 {
        self.base
            .unpruned_window(self.observed_card, descendant, from_root)
    }

    /// [`DocStats::staircase_cost`] with the observed cardinality.
    pub fn staircase_cost(&self, variant: Variant, window: f64) -> f64 {
        self.base
            .staircase_cost(variant, self.observed_card, window)
    }

    /// [`DocStats::fragment_cost`] with the observed cardinality.
    pub fn fragment_cost(&self, fragment: usize, window: f64, prescan: bool) -> f64 {
        self.base
            .fragment_cost(fragment, self.observed_card, window, prescan)
    }

    /// [`DocStats::sql_cost`] with the observed cardinality.
    pub fn sql_cost(&self, unpruned_window: f64, eq1_window: bool) -> f64 {
        self.base
            .sql_cost(self.observed_card, unpruned_window, eq1_window)
    }

    /// [`DocStats::twig_frontier_cost`] with the calibrated seek factor:
    /// the pivot-anchoring term (the seek bill the calibrator fits) is
    /// scaled by the session's observed seeks-per-prediction ratio.
    pub fn twig_frontier_cost(&self, legs: &[TwigLegCost]) -> f64 {
        self.base.twig_frontier_cost(self.observed_card, legs) * self.twig_seek_factor
    }
}

/// Session-lifetime cost-constant calibrator.
///
/// The static twig constants predict the leapfrog's seek bill from
/// first principles; the executor reports the *actual*
/// [`StepStats::seeks`](crate::StepStats) after every twig step. The
/// calibrator keeps an exponentially weighted ratio of observed to
/// predicted seeks and exposes it as a multiplicative factor
/// ([`Calibrator::twig_seek_factor`]) that [`RuntimeStats`] (and any
/// planner holding the calibrator) applies to
/// [`DocStats::twig_frontier_cost`]. The factor is clamped to
/// `[0.25, 4.0]` so one pathological sample can never invert every
/// later twig-vs-step decision.
///
/// All state is atomic; sessions share one calibrator across threads.
#[derive(Debug)]
pub struct Calibrator {
    /// EWMA of observed/predicted seek ratios, stored as `f64` bits.
    twig_seek: AtomicU64,
    /// Number of twig observations folded in.
    samples: AtomicU64,
}

/// EWMA weight of each new observation.
const CALIBRATOR_ALPHA: f64 = 0.25;
/// Clamp range for the fitted factor.
const CALIBRATOR_CLAMP: (f64, f64) = (0.25, 4.0);

impl Calibrator {
    /// A fresh calibrator: factor 1.0 (trust the static constants).
    pub fn new() -> Calibrator {
        Calibrator {
            twig_seek: AtomicU64::new(1.0f64.to_bits()),
            samples: AtomicU64::new(0),
        }
    }

    /// The fitted twig-seek factor (1.0 until observations arrive).
    pub fn twig_seek_factor(&self) -> f64 {
        f64::from_bits(self.twig_seek.load(Ordering::Relaxed))
    }

    /// How many twig steps have been folded into the fit.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Folds one twig step's real seek count against the cost the
    /// planner predicted for it. Zero or non-finite inputs are ignored.
    pub fn observe_twig(&self, predicted_cost: f64, observed_seeks: u64) {
        if predicted_cost <= 0.0 || observed_seeks == 0 {
            return;
        }
        let ratio =
            (observed_seeks as f64 / predicted_cost).clamp(CALIBRATOR_CLAMP.0, CALIBRATOR_CLAMP.1);
        // Lock-free EWMA: retry on concurrent writers.
        let mut current = self.twig_seek.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(current);
            let next = (old + CALIBRATOR_ALPHA * (ratio - old))
                .clamp(CALIBRATOR_CLAMP.0, CALIBRATOR_CLAMP.1);
            match self.twig_seek.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        self.samples.fetch_add(1, Ordering::Relaxed);
    }
}

impl Default for Calibrator {
    fn default() -> Calibrator {
        Calibrator::new()
    }
}

/// Per-leg inputs to the twig estimators
/// ([`DocStats::step_blowup_estimate`] /
/// [`DocStats::twig_frontier_cost`]): sizes only, so the planner can
/// price a twig region without resolving any fragment list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigLegCost {
    /// Fragment size of the leg's tag (element count for wildcards).
    pub fragment: usize,
    /// `true` for a `child::` edge from the previous leg (or context),
    /// `false` for `descendant::`.
    pub child_edge: bool,
    /// Per predicate chain, the fragment sizes of its steps, outermost
    /// first.
    pub chains: Vec<Vec<usize>>,
}

/// Minimum estimated touched-work (nodes / index entries, the cost
/// model's unit) before fanning a step's execution out across the worker
/// pool pays for the morsel handoff. Matches the executor-side floor the
/// core kernels enforce per morsel.
pub const MIN_FANOUT_COST: f64 = 4096.0;

/// Relative cost of one bitmap bit-probe vs. one plain masked kind/tag
/// test (one word load + shift against two gathered column loads).
pub const BITMAP_PROBE_DISCOUNT: f64 = 0.5;

/// How many future filter passes a lazily built per-tag bitmap's build
/// cost is amortized over when [`DocStats::bitmap_worthwhile`] decides
/// whether a first touch should pay the column pass. Sessions cache
/// bitmaps for their lifetime, so a hot tag's build is shared by every
/// later query that filters on it.
pub const BITMAP_AMORTIZE_TOUCHES: f64 = 8.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure1, random_doc};

    #[test]
    fn stats_reflect_the_document() {
        let doc = figure1();
        let s = DocStats::from_doc(&doc);
        assert_eq!(s.nodes(), 10);
        assert_eq!(s.elements(), 10);
        assert_eq!(s.height(), 3.0);
        // Levels are [0,1,2,1,1,2,3,3,2,3] → mean 1.8.
        assert!((s.avg_depth() - 1.8).abs() < 1e-9);
        assert!((s.avg_subtree() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn fragment_sizes_come_from_the_interner() {
        let doc = random_doc(3, 300);
        let s = DocStats::from_doc(&doc);
        for tag in ["p", "q", "r", "zzz"] {
            let id = doc.tag_id(tag);
            assert_eq!(
                s.fragment_size(&doc, id),
                id.map(|t| doc.elements_with_tag(t).len()).unwrap_or(0),
                "{tag}"
            );
        }
    }

    #[test]
    fn root_window_is_exact() {
        let doc = random_doc(1, 500);
        let s = DocStats::from_doc(&doc);
        assert_eq!(s.descendant_window(1.0, true), (doc.len() - 1) as f64);
        assert!(s.descendant_window(10.0, false) <= doc.len() as f64);
    }

    #[test]
    fn skipping_beats_basic_beats_nothing() {
        let doc = random_doc(2, 800);
        let s = DocStats::from_doc(&doc);
        let w = s.descendant_window(5.0, false);
        let est = s.staircase_cost(Variant::EstimationSkipping, 5.0, w);
        let basic = s.staircase_cost(Variant::Basic, 5.0, w);
        assert!(est <= basic, "estimation {est} > basic {basic}");
        assert!(est > 0.0);
    }

    #[test]
    fn small_fragments_undercut_the_full_scan() {
        // The §6 claim the planner banks on: a selective name test via a
        // prebuilt fragment is priced far below the plain join plus a
        // post-filter.
        let doc = random_doc(7, 2000);
        let s = DocStats::from_doc(&doc);
        let w = s.descendant_window(1.0, true);
        let staircase =
            s.staircase_cost(Variant::EstimationSkipping, 1.0, w) + s.apply_test_cost(w);
        let fragment = s.fragment_cost(25, 1.0, w, false);
        assert!(
            fragment * 4.0 < staircase,
            "fragment {fragment} not ≪ staircase {staircase}"
        );
        // …but the query-time prescan variant pays the selection scan.
        assert!(s.fragment_cost(25, 1.0, w, true) > s.nodes() as f64);
    }

    #[test]
    fn tree_unaware_plans_price_their_duplicates() {
        let doc = random_doc(9, 1500);
        let s = DocStats::from_doc(&doc);
        let card = 40.0;
        let pruned = s.descendant_window(card, false);
        let unpruned = s.unpruned_window(card, true, false);
        let staircase = s.staircase_cost(Variant::EstimationSkipping, card, pruned);
        assert!(s.naive_cost(unpruned) > staircase);
        assert!(s.sql_cost(card, unpruned, true) > staircase);
        assert!(s.sql_cost(card, unpruned, false) > s.sql_cost(card, unpruned, true));
    }

    #[test]
    fn bitmap_pricing_gates_the_lazy_build() {
        let doc = random_doc(5, 2000);
        let s = DocStats::from_doc(&doc);
        // A materialized bitmap always wins over the plain masked filter.
        assert!(s.bitmap_worthwhile(10.0, true));
        assert!(s.bitmap_filter_cost(100.0, true) < s.apply_test_cost(100.0));
        // A tiny filter never pays a fresh column pass…
        assert!(!s.bitmap_worthwhile(4.0, false));
        // …but a document-spanning one amortizes it.
        assert!(s.bitmap_worthwhile(s.nodes() as f64, false));
        // The un-built price includes the build pass.
        assert!(s.bitmap_filter_cost(10.0, false) > s.nodes() as f64);
    }

    #[test]
    fn skewed_twigs_price_the_leapfrog_below_the_blowup() {
        // A skew-shaped document: tall, with a huge first spine
        // fragment and a tiny second one — the step plan materializes
        // the whole first fragment, the leapfrog pivots on the tiny one.
        let s = DocStats {
            nodes: 2_000_000,
            elements: 1_900_000,
            attributes: 0,
            height: 14.0,
            avg_depth: 8.0,
        };
        let legs = [
            TwigLegCost {
                fragment: 600_000,
                child_edge: false,
                chains: vec![vec![500_000]],
            },
            TwigLegCost {
                fragment: 800,
                child_edge: false,
                chains: vec![vec![700]],
            },
        ];
        let blowup = s.step_blowup_estimate(1.0, true, &legs);
        let frontier = s.twig_frontier_cost(1.0, &legs);
        assert!(
            blowup > frontier,
            "skew: blowup {blowup} must exceed frontier {frontier}"
        );
        // …while a uniform region with comparable fragment sizes keeps
        // stepping cheaper than anchoring the pivot.
        let uniform = [
            TwigLegCost {
                fragment: 9_000,
                child_edge: false,
                chains: vec![vec![12_000]],
            },
            TwigLegCost {
                fragment: 11_000,
                child_edge: false,
                chains: vec![vec![8_000]],
            },
        ];
        let blowup = s.step_blowup_estimate(1.0, true, &uniform);
        let frontier = s.twig_frontier_cost(1.0, &uniform);
        assert!(
            blowup < frontier,
            "uniform: blowup {blowup} must stay below frontier {frontier}"
        );
    }

    #[test]
    fn twig_estimators_handle_degenerate_inputs() {
        let doc = random_doc(4, 600);
        let s = DocStats::from_doc(&doc);
        assert_eq!(s.twig_frontier_cost(1.0, &[]), 0.0);
        let legs = [TwigLegCost {
            fragment: 0,
            child_edge: true,
            chains: vec![],
        }];
        assert!(s.step_blowup_estimate(0.0, false, &legs) >= 0.0);
        assert!(s.twig_frontier_cost(0.0, &legs).is_finite());
        // Multi-step chains charge their closure walk.
        let deep = [TwigLegCost {
            fragment: 50,
            child_edge: false,
            chains: vec![vec![200, 100]],
        }];
        let shallow = [TwigLegCost {
            fragment: 50,
            child_edge: false,
            chains: vec![vec![100]],
        }];
        assert!(s.twig_frontier_cost(1.0, &deep) > s.twig_frontier_cost(1.0, &shallow));
    }

    #[test]
    fn runtime_overlay_shadows_the_estimated_cardinality() {
        let doc = random_doc(11, 1200);
        let s = DocStats::from_doc(&doc);
        // The static path would estimate a large frontier; the overlay
        // observed a tiny one and every formula re-prices from it.
        let rt = RuntimeStats::new(&s, 3.0);
        assert_eq!(rt.card(), 3.0);
        let w = rt.descendant_window(false);
        assert_eq!(w, s.descendant_window(3.0, false));
        assert_eq!(
            rt.staircase_cost(Variant::EstimationSkipping, w),
            s.staircase_cost(Variant::EstimationSkipping, 3.0, w)
        );
        assert_eq!(
            rt.fragment_cost(40, w, false),
            s.fragment_cost(40, 3.0, w, false)
        );
        // Observed-small frontiers price probes below the scan the
        // static estimate would have bought.
        let big = RuntimeStats::new(&s, 800.0);
        assert!(
            rt.fragment_cost(40, w, false)
                < big.fragment_cost(40, big.descendant_window(false), false)
        );
    }

    #[test]
    fn calibrator_fits_the_twig_seek_factor_from_observed_seeks() {
        let c = Calibrator::new();
        assert_eq!(c.twig_seek_factor(), 1.0);
        assert_eq!(c.samples(), 0);
        // Seeks keep coming in at half the predicted bill: the factor
        // converges below 1 (and the clamp bounds it).
        for _ in 0..32 {
            c.observe_twig(1000.0, 500);
        }
        assert!(c.twig_seek_factor() < 0.75, "{}", c.twig_seek_factor());
        assert!(c.twig_seek_factor() >= 0.25);
        assert_eq!(c.samples(), 32);
        // Degenerate observations are ignored.
        c.observe_twig(0.0, 10);
        c.observe_twig(100.0, 0);
        assert_eq!(c.samples(), 32);
        // A calibrated overlay scales the frontier cost by the factor.
        let doc = random_doc(2, 900);
        let s = DocStats::from_doc(&doc);
        let legs = [TwigLegCost {
            fragment: 50,
            child_edge: false,
            chains: vec![vec![100]],
        }];
        let plain = RuntimeStats::new(&s, 1.0).twig_frontier_cost(&legs);
        let fitted = RuntimeStats::new(&s, 1.0)
            .calibrated(&c)
            .twig_frontier_cost(&legs);
        assert!((fitted - plain * c.twig_seek_factor()).abs() < 1e-9);
    }

    #[test]
    fn empty_documents_price_to_zero_ish() {
        let s = DocStats::from_doc(&staircase_accel::EncodingBuilder::new().finish());
        assert_eq!(s.nodes(), 0);
        assert_eq!(s.descendant_window(1.0, true), 0.0);
        assert_eq!(s.selectivity(0), 0.0);
        assert!(s.structural_cost(Axis::Child, 1.0).is_finite());
    }
}
