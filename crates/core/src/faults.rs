//! Fault injection: named fail points compiled in under
//! `--cfg stair_faults`, no-ops otherwise.
//!
//! Robustness claims ("a panicking pool task fails one query, not the
//! process") are only worth what the tests that exercise them can
//! reach — and panics deep inside a kernel loop are unreachable from
//! ordinary inputs. A *fail point* is a named hook at such a site:
//!
//! ```ignore
//! staircase_core::faults::fail_point("core::pool::task");
//! ```
//!
//! In normal builds the call compiles to an empty inline function —
//! zero cost, no registry, nothing to configure. Under
//! `RUSTFLAGS="--cfg stair_faults"` the call consults a process-wide
//! registry and can **panic**, **delay**, or **trip the ambient
//! budget** ([`crate::governor`]), letting the chaos suite drive every
//! failure path end to end.
//!
//! The registry is configured two ways:
//!
//! * the `STAIR_FAULTS` environment variable, parsed once on first use:
//!   a `;`-separated list of `site=action` entries where *action* is
//!   `panic`, `delay:<ms>`, or `trip`, each optionally suffixed
//!   `:<count>` to disarm after that many firings — e.g.
//!   `STAIR_FAULTS="core::pool::task=panic:1;xpath::round=delay:5"`;
//! * programmatically via `set` / `clear` / `clear_all` (items that
//!   exist in `stair_faults` builds only), which is what the chaos
//!   tests use to scope an injection to one operation.

#[cfg(not(stair_faults))]
mod imp {
    /// A named fail point; inert in this build (`stair_faults` cfg is
    /// off).
    #[inline(always)]
    pub fn fail_point(_name: &str) {}

    /// `false`: fault injection is compiled out of this build.
    pub fn enabled() -> bool {
        false
    }
}

#[cfg(stair_faults)]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// What an armed fail point does when execution reaches it.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultKind {
        /// Panic with a message naming the site.
        Panic,
        /// Sleep for the given number of milliseconds.
        Delay(u64),
        /// Cancel the ambient [`crate::governor::Budget`] (forced trip);
        /// inert when no budget is installed.
        Trip,
    }

    #[derive(Debug)]
    struct Fault {
        kind: FaultKind,
        /// Remaining firings; `None` = unlimited.
        remaining: Option<u64>,
    }

    fn registry() -> &'static Mutex<HashMap<String, Fault>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Fault>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(parse_env(std::env::var("STAIR_FAULTS").ok())))
    }

    fn parse_env(spec: Option<String>) -> HashMap<String, Fault> {
        let mut map = HashMap::new();
        let Some(spec) = spec else { return map };
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let Some((site, action)) = entry.split_once('=') else {
                continue;
            };
            let mut parts = action.split(':');
            let kind = parts.next().unwrap_or("");
            let (kind, remaining) = match kind {
                "panic" => (FaultKind::Panic, parts.next()),
                "trip" => (FaultKind::Trip, parts.next()),
                "delay" => {
                    let ms = parts.next().and_then(|v| v.parse().ok()).unwrap_or(1);
                    (FaultKind::Delay(ms), parts.next())
                }
                _ => continue,
            };
            let remaining = remaining.and_then(|v| v.parse().ok());
            map.insert(site.trim().to_string(), Fault { kind, remaining });
        }
        map
    }

    /// A named fail point: fires the registered action for `name`, if
    /// any. Panics raised here unwind through the calling kernel — that
    /// is the point.
    pub fn fail_point(name: &str) {
        let kind = {
            let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
            let Some(fault) = reg.get_mut(name) else {
                return;
            };
            match &mut fault.remaining {
                Some(0) => return, // disarmed
                Some(n) => *n -= 1,
                None => {}
            }
            fault.kind
        };
        match kind {
            FaultKind::Panic => panic!("fault injected at {name}"),
            FaultKind::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
            FaultKind::Trip => {
                if let Some(budget) = crate::governor::current() {
                    budget.cancel();
                }
            }
        }
    }

    /// `true`: this build has fault injection compiled in.
    pub fn enabled() -> bool {
        true
    }

    /// Arms (or re-arms) the fail point `name`; `remaining` bounds how
    /// often it fires (`None` = unlimited).
    pub fn set(name: &str, kind: FaultKind, remaining: Option<u64>) {
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), Fault { kind, remaining });
    }

    /// Disarms the fail point `name`.
    pub fn clear(name: &str) {
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
    }

    /// Disarms every fail point (including env-configured ones).
    pub fn clear_all() {
        registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

pub use imp::*;

#[cfg(all(test, stair_faults))]
mod tests {
    use super::*;

    #[test]
    fn fail_points_fire_and_disarm() {
        assert!(enabled());
        // Unarmed site: nothing happens.
        fail_point("test::unarmed");

        // Bounded panic: fires exactly once.
        set("test::panic", FaultKind::Panic, Some(1));
        let hit = std::panic::catch_unwind(|| fail_point("test::panic"));
        assert!(hit.is_err(), "armed fail point must panic");
        fail_point("test::panic"); // disarmed: no panic

        // Trip cancels the ambient budget.
        let budget = std::sync::Arc::new(crate::governor::Budget::new());
        set("test::trip", FaultKind::Trip, None);
        {
            let _g = crate::governor::enter(std::sync::Arc::clone(&budget));
            fail_point("test::trip");
        }
        assert!(budget.is_cancelled());
        clear("test::trip");

        // Cleared sites stop firing.
        set("test::panic2", FaultKind::Panic, None);
        clear("test::panic2");
        fail_point("test::panic2");
        clear_all();
    }
}
