//! `following`- and `preceding`-axis evaluation.
//!
//! §3.1's empty-region analysis collapses these axes: after pruning, the
//! context is a single node and the staircase join "degenerates to a single
//! region query". Both implementations exploit the plane's structure so
//! they touch far fewer nodes than the region's size suggests:
//!
//! * `following(c)` is the contiguous pre range *after* `c`'s subtree —
//!   Equation (1) gives the exact start, no comparisons at all.
//! * `preceding(c)` scans the prefix `[0, c)`, but whenever it finds a
//!   preceding node it copies that node's guaranteed subtree block without
//!   comparisons; only `c`'s ancestors are inspected individually.

use staircase_accel::{Context, Doc, NodeKind, Pre};

use crate::prune::{prune_following, prune_preceding};
use crate::stats::StepStats;

/// Evaluates `context/following::node()`.
pub fn following(doc: &Doc, context: &Context) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_following(doc, context);
    stats.context_out = pruned.len();
    let Some(&c) = pruned.as_slice().first() else {
        return (Context::empty(), stats);
    };
    stats.partitions = 1;

    // First node after c's subtree: exact via Equation (1).
    let start = c + 1 + doc.subtree_size(c);
    let n = doc.len() as Pre;
    stats.nodes_skipped = u64::from(start.min(n).saturating_sub(c + 1));
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;
    let mut result = Vec::with_capacity(n.saturating_sub(start) as usize);
    for v in start..n {
        stats.nodes_copied += 1;
        if kind[v as usize] != attr {
            result.push(v);
        }
    }
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Evaluates `context/preceding::node()`.
pub fn preceding(doc: &Doc, context: &Context) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_preceding(doc, context);
    stats.context_out = pruned.len();
    let Some(&c) = pruned.as_slice().first() else {
        return (Context::empty(), stats);
    };
    stats.partitions = 1;

    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;
    let bound = post[c as usize];
    let mut result = Vec::new();
    let mut v: Pre = 0;
    while v < c {
        stats.nodes_scanned += 1;
        if post[v as usize] < bound {
            // v precedes c — and so does v's entire subtree, which cannot
            // contain c. Copy the guaranteed block without comparisons.
            if kind[v as usize] != attr {
                result.push(v);
            }
            let run = post[v as usize].saturating_sub(v).min(c - v - 1);
            for w in v + 1..=v + run {
                stats.nodes_copied += 1;
                if kind[w as usize] != attr {
                    result.push(w);
                }
            }
            v += 1 + run;
        } else {
            // v is an ancestor of c: inspect it alone and move on.
            v += 1;
        }
    }
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure1, random_context, random_doc, reference};
    use staircase_accel::Axis;

    #[test]
    fn figure1_following_of_f() {
        let doc = figure1();
        let (got, stats) = following(&doc, &Context::singleton(5));
        assert_eq!(got.as_slice(), &[8, 9]); // i, j
        assert_eq!(stats.nodes_scanned, 0, "following needs no comparisons");
    }

    #[test]
    fn figure1_preceding_of_f() {
        let doc = figure1();
        let (got, _) = preceding(&doc, &Context::singleton(5));
        assert_eq!(got.as_slice(), &[1, 2, 3]); // b, c, d
    }

    #[test]
    fn multi_context_matches_reference() {
        for seed in 0..25 {
            let doc = random_doc(seed, 400);
            let ctx = random_context(&doc, seed ^ 0x7777, 25);
            if ctx.is_empty() {
                continue;
            }
            let (f, _) = following(&doc, &ctx);
            assert_eq!(
                f.as_slice(),
                &reference(&doc, &ctx, Axis::Following)[..],
                "following seed {seed}"
            );
            let (p, _) = preceding(&doc, &ctx);
            assert_eq!(
                p.as_slice(),
                &reference(&doc, &ctx, Axis::Preceding)[..],
                "preceding seed {seed}"
            );
        }
    }

    #[test]
    fn following_of_root_is_empty() {
        let doc = figure1();
        let (got, _) = following(&doc, &Context::singleton(0));
        assert!(got.is_empty());
    }

    #[test]
    fn preceding_of_root_is_empty() {
        let doc = figure1();
        let (got, stats) = preceding(&doc, &Context::singleton(0));
        assert!(got.is_empty());
        assert_eq!(stats.nodes_touched(), 0);
    }

    #[test]
    fn empty_context() {
        let doc = figure1();
        assert!(following(&doc, &Context::empty()).0.is_empty());
        assert!(preceding(&doc, &Context::empty()).0.is_empty());
    }

    #[test]
    fn preceding_touches_result_plus_ancestors() {
        // The copy-run optimisation means only c's ancestors are scanned
        // beyond the result itself.
        for seed in 0..10 {
            let doc = random_doc(seed, 800);
            let deepest = doc.pres().max_by_key(|&p| doc.level(p)).unwrap();
            let (_, stats) = preceding(&doc, &Context::singleton(deepest));
            // Unfiltered region size (attributes included):
            let region = doc
                .pres()
                .filter(|&v| v < deepest && doc.post(v) < doc.post(deepest))
                .count() as u64;
            let ancestors = u64::from(doc.level(deepest));
            assert!(
                stats.nodes_touched() <= region + ancestors + 1,
                "seed {seed}: touched {} > {} + {}",
                stats.nodes_touched(),
                region,
                ancestors
            );
        }
    }

    #[test]
    fn attributes_excluded() {
        let doc = staircase_accel::Doc::from_xml(r#"<a x="1"><b y="2"/><c/><d/></a>"#).unwrap();
        // pre: a=0 @x=1 b=2 @y=3 c=4 d=5; context c (pre 4).
        let (f, _) = following(&doc, &Context::singleton(4));
        assert_eq!(f.as_slice(), &[5]);
        let (p, _) = preceding(&doc, &Context::singleton(4));
        assert_eq!(p.as_slice(), &[2]);
    }

    #[test]
    fn following_skips_subtree_exactly() {
        let doc = figure1();
        // e (pre 4) has subtree size 5; following must skip f..j.
        let (got, stats) = following(&doc, &Context::singleton(4));
        assert!(got.is_empty());
        assert_eq!(stats.nodes_skipped, 5);
    }
}
