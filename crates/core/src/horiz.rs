//! `following`- and `preceding`-axis evaluation.
//!
//! §3.1's empty-region analysis collapses these axes: after pruning, the
//! context is a single node and the staircase join "degenerates to a single
//! region query". Both implementations exploit the plane's structure so
//! they touch far fewer nodes than the region's size suggests:
//!
//! * `following(c)` is the contiguous pre range *after* `c`'s subtree —
//!   Equation (1) gives the exact start, no comparisons at all.
//! * `preceding(c)` scans the prefix `[0, c)`, but whenever it finds a
//!   preceding node it copies that node's guaranteed subtree block without
//!   comparisons; only `c`'s ancestors are inspected individually.

use staircase_accel::{Context, Doc, NodeKind, Pre};

use crate::batch::Scratch;
use crate::prune::{prune_following, prune_preceding};
use crate::stats::StepStats;

/// Evaluates `context/following::node()`.
pub fn following(doc: &Doc, context: &Context) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_following(doc, context);
    stats.context_out = pruned.len();
    let Some(&c) = pruned.as_slice().first() else {
        return (Context::empty(), stats);
    };
    stats.partitions = 1;

    // First node after c's subtree: exact via Equation (1).
    let start = c + 1 + doc.subtree_size(c);
    let n = doc.len() as Pre;
    stats.nodes_skipped = u64::from(start.min(n).saturating_sub(c + 1));
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;
    let mut result = Vec::with_capacity(n.saturating_sub(start) as usize);
    for v in start..n {
        stats.nodes_copied += 1;
        if kind[v as usize] != attr {
            result.push(v);
        }
    }
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Evaluates `context/preceding::node()`.
pub fn preceding(doc: &Doc, context: &Context) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_preceding(doc, context);
    stats.context_out = pruned.len();
    let Some(&c) = pruned.as_slice().first() else {
        return (Context::empty(), stats);
    };
    stats.partitions = 1;

    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;
    let bound = post[c as usize];
    let mut result = Vec::new();
    let mut v: Pre = 0;
    while v < c {
        stats.nodes_scanned += 1;
        if post[v as usize] < bound {
            // v precedes c — and so does v's entire subtree, which cannot
            // contain c. Copy the guaranteed block without comparisons.
            if kind[v as usize] != attr {
                result.push(v);
            }
            let run = post[v as usize].saturating_sub(v).min(c - v - 1);
            for w in v + 1..=v + run {
                stats.nodes_copied += 1;
                if kind[w as usize] != attr {
                    result.push(w);
                }
            }
            v += 1 + run;
        } else {
            // v is an ancestor of c: inspect it alone and move on.
            v += 1;
        }
    }
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Evaluates `contexts[k]/following::node()` for every `k` with **one**
/// suffix scan: the multi-context form of [`following`].
///
/// Pruning collapses every context to a single node, whose following
/// region is the contiguous pre range after its subtree — so the K
/// regions are *nested suffixes* of the plane. One filtered scan from
/// the earliest start serves everyone: each lane's result is a suffix
/// slice of the widest lane's, and the single physical pass is
/// attributed to the lane that needed all of it.
pub fn following_many(
    doc: &Doc,
    contexts: &[&Context],
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    let n = doc.len() as Pre;
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;

    // Per lane: the pruned context node and its region start.
    let starts: Vec<Option<(Pre, Pre)>> = contexts
        .iter()
        .map(|ctx| {
            prune_following(doc, ctx)
                .as_slice()
                .first()
                .map(|&c| (c, (c + 1 + doc.subtree_size(c)).min(n)))
        })
        .collect();
    let widest = starts.iter().flatten().map(|&(_, s)| s).min();

    // The one shared scan, from the earliest region start.
    let mut base = scratch.take();
    if let Some(start) = widest {
        base.extend((start..n).filter(|&v| kind[v as usize] != attr));
    }

    // The scan's physical reads go to the first lane with the widest
    // region; every other lane shares.
    let payer = starts
        .iter()
        .position(|s| matches!((s, widest), (Some((_, a)), Some(b)) if *a == b));
    let out = contexts
        .iter()
        .enumerate()
        .map(|(i, ctx)| {
            let mut stats = StepStats {
                context_in: ctx.len(),
                ..Default::default()
            };
            let Some((c, start)) = starts[i] else {
                return (Context::empty(), stats);
            };
            stats.context_out = 1;
            stats.partitions = 1;
            stats.nodes_skipped = u64::from(start.saturating_sub(c + 1));
            if payer == Some(i) {
                stats.nodes_copied = u64::from(n.saturating_sub(start));
            }
            let from = base.partition_point(|&v| v < start);
            let mut result = scratch.take();
            result.extend_from_slice(&base[from..]);
            stats.result_size = result.len();
            (Context::from_sorted(result), stats)
        })
        .collect();
    scratch.put(base);
    out
}

/// Evaluates `contexts[k]/preceding::node()` for every `k` with **one**
/// left-to-right scan: the multi-context form of [`preceding`].
///
/// Pruning collapses every context to its last node `cₖ`; the scan walks
/// `[0, max cₖ)` once, lanes dropping out as the cursor passes their
/// boundary. A position preceding the *earliest* active boundary
/// precedes every later one too (its subtree cannot contain any of
/// them), so the sequential join's comparison-free copy of guaranteed
/// subtree blocks serves all active lanes at once; only ancestors of the
/// earliest boundary are probed per lane. Physical reads are attributed
/// to the widest lane (which needs every position); other lanes report
/// zero incremental touches.
pub fn preceding_many(
    doc: &Doc,
    contexts: &[&Context],
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;

    // Pruned boundary per lane; unique boundaries ascending share one
    // result buffer each.
    let bounds: Vec<Option<Pre>> = contexts
        .iter()
        .map(|ctx| prune_preceding(doc, ctx).as_slice().first().copied())
        .collect();
    let mut uniq: Vec<Pre> = bounds.iter().flatten().copied().collect();
    uniq.sort_unstable();
    uniq.dedup();
    let mut results: Vec<Vec<Pre>> = uniq.iter().map(|_| scratch.take()).collect();

    let mut scanned = 0u64;
    let mut copied = 0u64;
    if let Some(&c_max) = uniq.last() {
        let mut lo = 0usize; // first boundary still ahead of the cursor
        let mut v: Pre = 0;
        while v < c_max {
            while uniq[lo] <= v {
                lo += 1; // this boundary's region is complete
            }
            let first = uniq[lo];
            scanned += 1;
            if post[v as usize] < post[first as usize] {
                // v precedes the earliest active boundary — and therefore
                // every later one. Copy v and its guaranteed subtree
                // block to all active lanes without further comparisons.
                let run = post[v as usize].saturating_sub(v).min(first - v - 1);
                for w in v..=v + run {
                    if kind[w as usize] != attr {
                        for r in &mut results[lo..] {
                            r.push(w);
                        }
                    }
                }
                copied += u64::from(run);
                v += 1 + run;
            } else {
                // v is an ancestor of the earliest boundary; it may still
                // precede later ones — probe each individually.
                for (u, r) in uniq.iter().zip(&mut results).skip(lo + 1) {
                    if post[v as usize] < post[*u as usize] && kind[v as usize] != attr {
                        r.push(v);
                    }
                }
                v += 1;
            }
        }
    }

    // Distribute: the widest boundary's first lane pays for the scan;
    // duplicates clone, the last user of each buffer takes it.
    let payer = uniq
        .last()
        .and_then(|&m| bounds.iter().position(|b| *b == Some(m)));
    let mut users: Vec<usize> = uniq
        .iter()
        .map(|u| bounds.iter().filter(|b| **b == Some(*u)).count())
        .collect();
    let mut finished: Vec<Option<Context>> = results
        .into_iter()
        .map(|r| Some(Context::from_sorted(r)))
        .collect();
    bounds
        .iter()
        .enumerate()
        .map(|(i, bound)| {
            let mut stats = StepStats {
                context_in: contexts[i].len(),
                ..Default::default()
            };
            let Some(c) = bound else {
                return (Context::empty(), stats);
            };
            stats.context_out = 1;
            stats.partitions = 1;
            let u = uniq.binary_search(c).expect("every boundary is indexed");
            users[u] -= 1;
            let slot = &mut finished[u];
            let ctx = if users[u] == 0 {
                slot.take().expect("buffer taken only by its last user")
            } else {
                slot.as_ref()
                    .expect("buffer live until its last user")
                    .clone()
            };
            if payer == Some(i) {
                stats.nodes_scanned = scanned;
                stats.nodes_copied = copied;
            }
            stats.result_size = ctx.len();
            (ctx, stats)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure1, random_context, random_doc, reference};
    use staircase_accel::Axis;

    #[test]
    fn figure1_following_of_f() {
        let doc = figure1();
        let (got, stats) = following(&doc, &Context::singleton(5));
        assert_eq!(got.as_slice(), &[8, 9]); // i, j
        assert_eq!(stats.nodes_scanned, 0, "following needs no comparisons");
    }

    #[test]
    fn figure1_preceding_of_f() {
        let doc = figure1();
        let (got, _) = preceding(&doc, &Context::singleton(5));
        assert_eq!(got.as_slice(), &[1, 2, 3]); // b, c, d
    }

    #[test]
    fn multi_context_matches_reference() {
        for seed in 0..25 {
            let doc = random_doc(seed, 400);
            let ctx = random_context(&doc, seed ^ 0x7777, 25);
            if ctx.is_empty() {
                continue;
            }
            let (f, _) = following(&doc, &ctx);
            assert_eq!(
                f.as_slice(),
                &reference(&doc, &ctx, Axis::Following)[..],
                "following seed {seed}"
            );
            let (p, _) = preceding(&doc, &ctx);
            assert_eq!(
                p.as_slice(),
                &reference(&doc, &ctx, Axis::Preceding)[..],
                "preceding seed {seed}"
            );
        }
    }

    #[test]
    fn following_of_root_is_empty() {
        let doc = figure1();
        let (got, _) = following(&doc, &Context::singleton(0));
        assert!(got.is_empty());
    }

    #[test]
    fn preceding_of_root_is_empty() {
        let doc = figure1();
        let (got, stats) = preceding(&doc, &Context::singleton(0));
        assert!(got.is_empty());
        assert_eq!(stats.nodes_touched(), 0);
    }

    #[test]
    fn empty_context() {
        let doc = figure1();
        assert!(following(&doc, &Context::empty()).0.is_empty());
        assert!(preceding(&doc, &Context::empty()).0.is_empty());
    }

    #[test]
    fn preceding_touches_result_plus_ancestors() {
        // The copy-run optimisation means only c's ancestors are scanned
        // beyond the result itself.
        for seed in 0..10 {
            let doc = random_doc(seed, 800);
            let deepest = doc.pres().max_by_key(|&p| doc.level(p)).unwrap();
            let (_, stats) = preceding(&doc, &Context::singleton(deepest));
            // Unfiltered region size (attributes included):
            let region = doc
                .pres()
                .filter(|&v| v < deepest && doc.post(v) < doc.post(deepest))
                .count() as u64;
            let ancestors = u64::from(doc.level(deepest));
            assert!(
                stats.nodes_touched() <= region + ancestors + 1,
                "seed {seed}: touched {} > {} + {}",
                stats.nodes_touched(),
                region,
                ancestors
            );
        }
    }

    #[test]
    fn attributes_excluded() {
        let doc = staircase_accel::Doc::from_xml(r#"<a x="1"><b y="2"/><c/><d/></a>"#).unwrap();
        // pre: a=0 @x=1 b=2 @y=3 c=4 d=5; context c (pre 4).
        let (f, _) = following(&doc, &Context::singleton(4));
        assert_eq!(f.as_slice(), &[5]);
        let (p, _) = preceding(&doc, &Context::singleton(4));
        assert_eq!(p.as_slice(), &[2]);
    }

    #[test]
    fn following_skips_subtree_exactly() {
        let doc = figure1();
        // e (pre 4) has subtree size 5; following must skip f..j.
        let (got, stats) = following(&doc, &Context::singleton(4));
        assert!(got.is_empty());
        assert_eq!(stats.nodes_skipped, 5);
    }
}
