//! `following`- and `preceding`-axis evaluation.
//!
//! §3.1's empty-region analysis collapses these axes: after pruning, the
//! context is a single node and the staircase join "degenerates to a single
//! region query". Both implementations exploit the plane's structure so
//! they touch far fewer nodes than the region's size suggests:
//!
//! * `following(c)` is the contiguous pre range *after* `c`'s subtree —
//!   Equation (1) gives the exact start, no comparisons at all.
//! * `preceding(c)` scans the prefix `[0, c)`, but whenever it finds a
//!   preceding node it copies that node's guaranteed subtree block without
//!   comparisons; only `c`'s ancestors are inspected individually.

use staircase_accel::{Context, Doc, NodeKind, Pre};

use crate::batch::Scratch;
use crate::morsel::morsel_count;
use crate::pool::WorkerPool;
use crate::prune::{prune_following, prune_preceding};
use crate::stats::StepStats;

/// Evaluates `context/following::node()`.
pub fn following(doc: &Doc, context: &Context) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_following(doc, context);
    stats.context_out = pruned.len();
    let Some(&c) = pruned.as_slice().first() else {
        return (Context::empty(), stats);
    };
    stats.partitions = 1;

    // First node after c's subtree: exact via Equation (1).
    let start = c + 1 + doc.subtree_size(c);
    let n = doc.len() as Pre;
    stats.nodes_skipped = u64::from(start.min(n).saturating_sub(c + 1));
    let kind = doc.kind_column();
    let mut result = Vec::with_capacity(n.saturating_sub(start) as usize);
    // The whole suffix is copied position by position whatever the
    // attribute filter says, so the counter is arithmetic and the
    // filter is a masked select — chunked when governed so a trip
    // cannot hide behind one plane-sized copy.
    stats.nodes_copied = u64::from(n.saturating_sub(start));
    let mut gov = crate::governor::Ticker::ambient();
    let mut lo = start.min(n);
    while lo < n {
        let hi = if gov.active() {
            n.min(lo + crate::governor::SCAN_CHUNK)
        } else {
            n
        };
        crate::mask::select_non_attr(kind, lo, hi, &mut result);
        if gov.tick(u64::from(hi - lo)) {
            break;
        }
        lo = hi;
    }
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Evaluates `context/preceding::node()`.
pub fn preceding(doc: &Doc, context: &Context) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_preceding(doc, context);
    stats.context_out = pruned.len();
    let Some(&c) = pruned.as_slice().first() else {
        return (Context::empty(), stats);
    };
    stats.partitions = 1;

    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;
    let bound = post[c as usize];
    let mut result = Vec::new();
    let mut gov = crate::governor::Ticker::ambient();
    let mut v: Pre = 0;
    'scan: while v < c {
        stats.nodes_scanned += 1;
        if gov.tick(1) {
            break;
        }
        if post[v as usize] < bound {
            // v precedes c — and so does v's entire subtree, which cannot
            // contain c. Copy the guaranteed block without comparisons.
            if kind[v as usize] != attr {
                result.push(v);
            }
            let run = post[v as usize].saturating_sub(v).min(c - v - 1);
            // Guaranteed-block copy: every run position is charged, so
            // the attribute filter runs through the mask kernel —
            // chunked when governed.
            stats.nodes_copied += u64::from(run);
            let run_end = v + 1 + run;
            let mut lo = v + 1;
            while lo < run_end {
                let hi = if gov.active() {
                    run_end.min(lo + crate::governor::SCAN_CHUNK)
                } else {
                    run_end
                };
                crate::mask::select_non_attr(kind, lo, hi, &mut result);
                if gov.tick(u64::from(hi - lo)) {
                    break 'scan;
                }
                lo = hi;
            }
            v = run_end;
        } else {
            // v is an ancestor of c: inspect it alone and move on.
            v += 1;
        }
    }
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Evaluates `contexts[k]/following::node()` for every `k` with **one**
/// suffix scan: the multi-context form of [`following`].
///
/// Pruning collapses every context to a single node, whose following
/// region is the contiguous pre range after its subtree — so the K
/// regions are *nested suffixes* of the plane. One filtered scan from
/// the earliest start serves everyone: each lane's result is a suffix
/// slice of the widest lane's, and the single physical pass is
/// attributed to the lane that needed all of it.
pub fn following_many(
    doc: &Doc,
    contexts: &[&Context],
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    let n = doc.len() as Pre;
    let kind = doc.kind_column();

    // Per lane: the pruned context node and its region start.
    let starts: Vec<Option<(Pre, Pre)>> = contexts
        .iter()
        .map(|ctx| {
            prune_following(doc, ctx)
                .as_slice()
                .first()
                .map(|&c| (c, (c + 1 + doc.subtree_size(c)).min(n)))
        })
        .collect();
    let widest = starts.iter().flatten().map(|&(_, s)| s).min();

    // The one shared scan, from the earliest region start — chunked
    // when governed; a trip leaves `base` (and thus every lane) partial,
    // which the governed caller discards.
    let mut base = scratch.take();
    if let Some(start) = widest {
        let mut gov = crate::governor::Ticker::ambient();
        let mut lo = start;
        while lo < n {
            let hi = if gov.active() {
                n.min(lo + crate::governor::SCAN_CHUNK)
            } else {
                n
            };
            crate::mask::select_non_attr(kind, lo, hi, &mut base);
            if gov.tick(u64::from(hi - lo)) {
                break;
            }
            lo = hi;
        }
    }

    // The scan's physical reads go to the first lane with the widest
    // region; every other lane shares.
    let payer = starts
        .iter()
        .position(|s| matches!((s, widest), (Some((_, a)), Some(b)) if *a == b));
    let out = contexts
        .iter()
        .enumerate()
        .map(|(i, ctx)| {
            let mut stats = StepStats {
                context_in: ctx.len(),
                ..Default::default()
            };
            let Some((c, start)) = starts[i] else {
                return (Context::empty(), stats);
            };
            stats.context_out = 1;
            stats.partitions = 1;
            stats.nodes_skipped = u64::from(start.saturating_sub(c + 1));
            if payer == Some(i) {
                stats.nodes_copied = u64::from(n.saturating_sub(start));
            }
            let from = base.partition_point(|&v| v < start);
            let mut result = scratch.take();
            result.extend_from_slice(&base[from..]);
            stats.result_size = result.len();
            (Context::from_sorted(result), stats)
        })
        .collect();
    scratch.put(base);
    out
}

/// Evaluates `contexts[k]/preceding::node()` for every `k` with **one**
/// left-to-right scan: the multi-context form of [`preceding`].
///
/// Pruning collapses every context to its last node `cₖ`; the scan walks
/// `[0, max cₖ)` once, lanes dropping out as the cursor passes their
/// boundary. A position preceding the *earliest* active boundary
/// precedes every later one too (its subtree cannot contain any of
/// them), so the sequential join's comparison-free copy of guaranteed
/// subtree blocks serves all active lanes at once; only ancestors of the
/// earliest boundary are probed per lane. Physical reads are attributed
/// to the widest lane (which needs every position); other lanes report
/// zero incremental touches.
pub fn preceding_many(
    doc: &Doc,
    contexts: &[&Context],
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    // Pruned boundary per lane; unique boundaries ascending share one
    // result buffer each.
    let bounds: Vec<Option<Pre>> = contexts
        .iter()
        .map(|ctx| prune_preceding(doc, ctx).as_slice().first().copied())
        .collect();
    let mut uniq: Vec<Pre> = bounds.iter().flatten().copied().collect();
    uniq.sort_unstable();
    uniq.dedup();
    let mut results: Vec<Vec<Pre>> = uniq.iter().map(|_| scratch.take()).collect();

    let (scanned, copied) = match uniq.last() {
        Some(&c_max) => preceding_scan_range(doc, &uniq, 0, c_max, &mut results),
        None => (0, 0),
    };

    // Distribute: the widest boundary's first lane pays for the scan;
    // duplicates clone, the last user of each buffer takes it.
    preceding_distribute(contexts, &bounds, &uniq, results, scanned, copied)
}

/// The preceding scan restricted to positions `[from, to)`, pushing into
/// one result buffer per unique boundary (`results` parallel to `uniq`,
/// ascending; `uniq` non-empty with `to ≤ uniq.last()`).
///
/// The full scan is the `[0, c_max)` range. Any other entry point first
/// *reconstructs* the cursor state at `from`: the only way `from` can sit
/// inside a comparison-free copy run is under a run started by one of its
/// **ancestors** (a run is a subtree prefix, and a subtree containing
/// `from` belongs to an ancestor), so walking `from`'s ancestor chain
/// top-down — skipping ancestors covered by an earlier ancestor's run,
/// exactly as the left-to-right scan would — recovers in O(h · log K)
/// whether `from` is mid-run and for which boundary set. Per position the
/// behaviour (and thus the scanned/copied accounting, counted
/// per-position here) is identical to the full scan, so range results
/// concatenate to the full scan's and per-range counters sum to its
/// totals (asserted by the parallel-equivalence tests).
fn preceding_scan_range(
    doc: &Doc,
    uniq: &[Pre],
    from: Pre,
    to: Pre,
    results: &mut [Vec<Pre>],
) -> (u64, u64) {
    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;
    let mut scanned = 0u64;
    let mut copied = 0u64;
    let mut gov = crate::governor::Ticker::ambient();
    let mut v = from;

    if from > 0 {
        // Reconstruct: is `from` inside a run? Walk its ancestors in
        // document order, tracking the furthest run end among the ones
        // the scan actually visits (an ancestor inside an earlier run is
        // skipped by the scan and starts no run of its own).
        let mut chain: Vec<Pre> = Vec::new();
        let mut p = doc.parent(from);
        while p != staircase_accel::NO_PARENT {
            chain.push(p);
            p = doc.parent(p);
        }
        let mut cover: Option<(Pre, usize)> = None; // (run end, head's boundary index)
        for &u in chain.iter().rev() {
            if cover.is_some_and(|(end, _)| u <= end) {
                continue; // covered: the scan never visits u as a head
            }
            let lo = uniq.partition_point(|&b| b <= u);
            let Some(&first) = uniq.get(lo) else { break };
            if post[u as usize] < post[first as usize] {
                let run_end = u + post[u as usize].saturating_sub(u).min(first - u - 1);
                if cover.is_none_or(|(end, _)| run_end > end) {
                    cover = Some((run_end, lo));
                }
            }
        }
        if let Some((run_end, lo)) = cover {
            if run_end >= from {
                // Mid-run: finish the covered stretch that falls in range.
                for w in from..=run_end.min(to.saturating_sub(1)) {
                    copied += 1;
                    if gov.tick(1) {
                        return (scanned, copied);
                    }
                    if kind[w as usize] != attr {
                        for r in &mut results[lo..] {
                            r.push(w);
                        }
                    }
                }
                v = run_end + 1;
            }
        }
    }

    let mut lo = uniq.partition_point(|&b| b <= v);
    while v < to {
        while lo < uniq.len() && uniq[lo] <= v {
            lo += 1; // this boundary's region is complete
        }
        if lo == uniq.len() {
            break;
        }
        let first = uniq[lo];
        scanned += 1;
        if gov.tick(1) {
            return (scanned, copied);
        }
        if post[v as usize] < post[first as usize] {
            // v precedes the earliest active boundary — and therefore
            // every later one. Copy v and its guaranteed subtree block to
            // all active lanes without further comparisons. A run
            // overshooting `to` is finished by the next range's
            // reconstruction.
            let run = post[v as usize].saturating_sub(v).min(first - v - 1);
            if kind[v as usize] != attr {
                for r in &mut results[lo..] {
                    r.push(v);
                }
            }
            let stop = (v + run).min(to.saturating_sub(1));
            for w in v + 1..=stop {
                copied += 1;
                if gov.tick(1) {
                    return (scanned, copied);
                }
                if kind[w as usize] != attr {
                    for r in &mut results[lo..] {
                        r.push(w);
                    }
                }
            }
            v += 1 + run;
        } else {
            // v is an ancestor of the earliest boundary; it may still
            // precede later ones — probe each individually.
            for (u, r) in uniq.iter().zip(results.iter_mut()).skip(lo + 1) {
                if post[v as usize] < post[*u as usize] && kind[v as usize] != attr {
                    r.push(v);
                }
            }
            v += 1;
        }
    }
    (scanned, copied)
}

/// The parallel form of [`following_many`]: the one shared suffix scan
/// is built by range chunks on `pool`, and the per-lane suffix copies run
/// as pool tasks. Results and statistics are identical to the sequential
/// form; a width-1 pool (or a region too small to amortize handoff)
/// degenerates to it outright.
pub fn following_many_par(
    doc: &Doc,
    contexts: &[&Context],
    pool: &WorkerPool,
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    let n = doc.len() as Pre;
    let kind = doc.kind_column();

    let starts: Vec<Option<(Pre, Pre)>> = contexts
        .iter()
        .map(|ctx| {
            prune_following(doc, ctx)
                .as_slice()
                .first()
                .map(|&c| (c, (c + 1 + doc.subtree_size(c)).min(n)))
        })
        .collect();
    let widest = starts.iter().flatten().map(|&(_, s)| s).min();
    let lanes = starts.iter().flatten().count() as u64;
    let work = widest.map_or(0, |s| u64::from(n - s)) * lanes.max(1);
    let Some(k) = (pool.width() > 1)
        .then(|| morsel_count(work, pool.width()))
        .flatten()
    else {
        return following_many(doc, contexts, scratch);
    };

    // Phase 1: the shared scan, chunked by range.
    let start = widest.expect("work > 0 implies a widest region");
    let chunk = u64::from(n - start).div_ceil(k as u64).max(1) as Pre;
    let ranges: Vec<(Pre, Pre)> = (0..k as Pre)
        .map(|i| {
            let lo = start + i * chunk;
            (lo.min(n), lo.saturating_add(chunk).min(n))
        })
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    let buffers: Vec<Vec<Pre>> = ranges.iter().map(|_| scratch.take()).collect();
    let parts = pool.run(
        ranges
            .into_iter()
            .zip(buffers)
            .map(|((lo, hi), mut buf)| {
                move || {
                    crate::mask::select_non_attr(kind, lo, hi, &mut buf);
                    buf
                }
            })
            .collect(),
    );
    let mut base = scratch.take();
    base.reserve(parts.iter().map(Vec::len).sum());
    for part in parts {
        base.extend_from_slice(&part);
        scratch.put(part);
    }

    // Phase 2: per-lane suffix copies, one task each.
    let payer = starts
        .iter()
        .position(|s| matches!((s, widest), (Some((_, a)), Some(b)) if *a == b));
    let copies: Vec<Option<Vec<Pre>>> = {
        let live: Vec<(usize, Pre)> = starts
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|(_, start)| (i, start)))
            .collect();
        let buffers: Vec<Vec<Pre>> = live.iter().map(|_| scratch.take()).collect();
        let base = &base;
        let filled = pool.run(
            live.iter()
                .zip(buffers)
                .map(|(&(_, start), mut buf)| {
                    move || {
                        let from = base.partition_point(|&v| v < start);
                        buf.extend_from_slice(&base[from..]);
                        buf
                    }
                })
                .collect(),
        );
        let mut slots: Vec<Option<Vec<Pre>>> = starts.iter().map(|_| None).collect();
        for ((i, _), buf) in live.into_iter().zip(filled) {
            slots[i] = Some(buf);
        }
        slots
    };
    scratch.put(base);

    contexts
        .iter()
        .enumerate()
        .zip(copies)
        .map(|((i, ctx), copy)| {
            let mut stats = StepStats {
                context_in: ctx.len(),
                ..Default::default()
            };
            let Some((c, start)) = starts[i] else {
                return (Context::empty(), stats);
            };
            stats.context_out = 1;
            stats.partitions = 1;
            stats.nodes_skipped = u64::from(start.saturating_sub(c + 1));
            if payer == Some(i) {
                stats.nodes_copied = u64::from(n.saturating_sub(start));
            }
            let result = copy.expect("every live lane produced a copy");
            stats.result_size = result.len();
            (Context::from_sorted(result), stats)
        })
        .collect()
}

/// The parallel form of [`preceding_many`]: the one shared left-to-right
/// scan is split into pre-range chunks, each entered via
/// `preceding_scan_range`'s state reconstruction, so per-chunk results
/// concatenate to the sequential scan's and the per-chunk access
/// counters sum to its totals exactly.
pub fn preceding_many_par(
    doc: &Doc,
    contexts: &[&Context],
    pool: &WorkerPool,
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    let bounds: Vec<Option<Pre>> = contexts
        .iter()
        .map(|ctx| prune_preceding(doc, ctx).as_slice().first().copied())
        .collect();
    let mut uniq: Vec<Pre> = bounds.iter().flatten().copied().collect();
    uniq.sort_unstable();
    uniq.dedup();

    let c_max = uniq.last().copied().unwrap_or(0);
    let Some(k) = (pool.width() > 1)
        .then(|| morsel_count(u64::from(c_max), pool.width()))
        .flatten()
    else {
        return preceding_many(doc, contexts, scratch);
    };

    // Chunked shared scan: each chunk fills one buffer per unique
    // boundary; chunk-major concatenation preserves document order.
    let chunk = u64::from(c_max).div_ceil(k as u64).max(1) as Pre;
    let ranges: Vec<(Pre, Pre)> = (0..k as Pre)
        .map(|i| ((i * chunk).min(c_max), ((i + 1) * chunk).min(c_max)))
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    let buffer_sets: Vec<Vec<Vec<Pre>>> = ranges
        .iter()
        .map(|_| uniq.iter().map(|_| scratch.take()).collect())
        .collect();
    let uniq_ref = &uniq;
    let parts = pool.run(
        ranges
            .into_iter()
            .zip(buffer_sets)
            .map(|((lo, hi), mut bufs)| {
                move || {
                    let (scanned, copied) = preceding_scan_range(doc, uniq_ref, lo, hi, &mut bufs);
                    (bufs, scanned, copied)
                }
            })
            .collect(),
    );
    let mut results: Vec<Vec<Pre>> = uniq.iter().map(|_| scratch.take()).collect();
    let mut scanned = 0u64;
    let mut copied = 0u64;
    for (bufs, s, c) in parts {
        for (r, buf) in results.iter_mut().zip(bufs) {
            r.extend_from_slice(&buf);
            scratch.put(buf);
        }
        scanned += s;
        copied += c;
    }

    preceding_distribute(contexts, &bounds, &uniq, results, scanned, copied)
}

/// The distribution tail shared by [`preceding_many`] and
/// [`preceding_many_par`]: per-boundary buffers fan out to the lanes,
/// duplicates cloning and the widest boundary's first lane paying for
/// the scan.
fn preceding_distribute(
    contexts: &[&Context],
    bounds: &[Option<Pre>],
    uniq: &[Pre],
    results: Vec<Vec<Pre>>,
    scanned: u64,
    copied: u64,
) -> Vec<(Context, StepStats)> {
    let payer = uniq
        .last()
        .and_then(|&m| bounds.iter().position(|b| *b == Some(m)));
    let mut users: Vec<usize> = uniq
        .iter()
        .map(|u| bounds.iter().filter(|b| **b == Some(*u)).count())
        .collect();
    let mut finished: Vec<Option<Context>> = results
        .into_iter()
        .map(|r| Some(Context::from_sorted(r)))
        .collect();
    bounds
        .iter()
        .enumerate()
        .map(|(i, bound)| {
            let mut stats = StepStats {
                context_in: contexts[i].len(),
                ..Default::default()
            };
            let Some(c) = bound else {
                return (Context::empty(), stats);
            };
            stats.context_out = 1;
            stats.partitions = 1;
            let u = uniq.binary_search(c).expect("every boundary is indexed");
            users[u] -= 1;
            let slot = &mut finished[u];
            let ctx = if users[u] == 0 {
                slot.take().expect("buffer taken only by its last user")
            } else {
                slot.as_ref()
                    .expect("buffer live until its last user")
                    .clone()
            };
            if payer == Some(i) {
                stats.nodes_scanned = scanned;
                stats.nodes_copied = copied;
            }
            stats.result_size = ctx.len();
            (ctx, stats)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure1, random_context, random_doc, reference};
    use staircase_accel::Axis;

    #[test]
    fn figure1_following_of_f() {
        let doc = figure1();
        let (got, stats) = following(&doc, &Context::singleton(5));
        assert_eq!(got.as_slice(), &[8, 9]); // i, j
        assert_eq!(stats.nodes_scanned, 0, "following needs no comparisons");
    }

    #[test]
    fn figure1_preceding_of_f() {
        let doc = figure1();
        let (got, _) = preceding(&doc, &Context::singleton(5));
        assert_eq!(got.as_slice(), &[1, 2, 3]); // b, c, d
    }

    #[test]
    fn multi_context_matches_reference() {
        for seed in 0..25 {
            let doc = random_doc(seed, 400);
            let ctx = random_context(&doc, seed ^ 0x7777, 25);
            if ctx.is_empty() {
                continue;
            }
            let (f, _) = following(&doc, &ctx);
            assert_eq!(
                f.as_slice(),
                &reference(&doc, &ctx, Axis::Following)[..],
                "following seed {seed}"
            );
            let (p, _) = preceding(&doc, &ctx);
            assert_eq!(
                p.as_slice(),
                &reference(&doc, &ctx, Axis::Preceding)[..],
                "preceding seed {seed}"
            );
        }
    }

    #[test]
    fn following_of_root_is_empty() {
        let doc = figure1();
        let (got, _) = following(&doc, &Context::singleton(0));
        assert!(got.is_empty());
    }

    #[test]
    fn preceding_of_root_is_empty() {
        let doc = figure1();
        let (got, stats) = preceding(&doc, &Context::singleton(0));
        assert!(got.is_empty());
        assert_eq!(stats.nodes_touched(), 0);
    }

    #[test]
    fn empty_context() {
        let doc = figure1();
        assert!(following(&doc, &Context::empty()).0.is_empty());
        assert!(preceding(&doc, &Context::empty()).0.is_empty());
    }

    #[test]
    fn preceding_touches_result_plus_ancestors() {
        // The copy-run optimisation means only c's ancestors are scanned
        // beyond the result itself.
        for seed in 0..10 {
            let doc = random_doc(seed, 800);
            let deepest = doc.pres().max_by_key(|&p| doc.level(p)).unwrap();
            let (_, stats) = preceding(&doc, &Context::singleton(deepest));
            // Unfiltered region size (attributes included):
            let region = doc
                .pres()
                .filter(|&v| v < deepest && doc.post(v) < doc.post(deepest))
                .count() as u64;
            let ancestors = u64::from(doc.level(deepest));
            assert!(
                stats.nodes_touched() <= region + ancestors + 1,
                "seed {seed}: touched {} > {} + {}",
                stats.nodes_touched(),
                region,
                ancestors
            );
        }
    }

    #[test]
    fn attributes_excluded() {
        let doc = staircase_accel::Doc::from_xml(r#"<a x="1"><b y="2"/><c/><d/></a>"#).unwrap();
        // pre: a=0 @x=1 b=2 @y=3 c=4 d=5; context c (pre 4).
        let (f, _) = following(&doc, &Context::singleton(4));
        assert_eq!(f.as_slice(), &[5]);
        let (p, _) = preceding(&doc, &Context::singleton(4));
        assert_eq!(p.as_slice(), &[2]);
    }

    #[test]
    fn following_skips_subtree_exactly() {
        let doc = figure1();
        // e (pre 4) has subtree size 5; following must skip f..j.
        let (got, stats) = following(&doc, &Context::singleton(4));
        assert!(got.is_empty());
        assert_eq!(stats.nodes_skipped, 5);
    }

    #[test]
    fn parallel_horiz_matches_sequential_exactly() {
        use crate::WorkerPool;
        for width in [2, 4] {
            let pool = WorkerPool::new(width);
            for seed in 0..8 {
                // Big enough that the morsel gate opens.
                let doc = random_doc(seed, 9000);
                let ctxs: Vec<Context> = (0..4)
                    .map(|i| random_context(&doc, seed ^ (0xF011 + i), 15))
                    .collect();
                let refs: Vec<&Context> = ctxs.iter().collect();
                let mut s1 = Scratch::new();
                let mut s2 = Scratch::new();
                let par = following_many_par(&doc, &refs, &pool, &mut s1);
                let seq = following_many(&doc, &refs, &mut s2);
                for (i, ((pc, ps), (sc, ss))) in par.iter().zip(&seq).enumerate() {
                    assert_eq!(pc, sc, "following seed {seed} width {width} lane {i}");
                    assert_eq!(ps, ss, "following stats seed {seed} width {width} lane {i}");
                }
                let par = preceding_many_par(&doc, &refs, &pool, &mut s1);
                let seq = preceding_many(&doc, &refs, &mut s2);
                for (i, ((pc, ps), (sc, ss))) in par.iter().zip(&seq).enumerate() {
                    assert_eq!(pc, sc, "preceding seed {seed} width {width} lane {i}");
                    assert_eq!(ps, ss, "preceding stats seed {seed} width {width} lane {i}");
                }
            }
        }
    }

    #[test]
    fn parallel_horiz_small_regions_stay_sequential() {
        use crate::WorkerPool;
        let pool = WorkerPool::new(4);
        let doc = figure1();
        let ctx = Context::singleton(5);
        let refs: Vec<&Context> = vec![&ctx];
        let mut scratch = Scratch::new();
        let par = following_many_par(&doc, &refs, &pool, &mut scratch);
        let seq = following_many(&doc, &refs, &mut scratch);
        assert_eq!(par[0], seq[0]);
        let par = preceding_many_par(&doc, &refs, &pool, &mut scratch);
        let seq = preceding_many(&doc, &refs, &mut scratch);
        assert_eq!(par[0], seq[0]);
        // Empty contexts yield empty results in both forms.
        let empty = Context::empty();
        let par = preceding_many_par(&doc, &[&empty], &pool, &mut scratch);
        assert!(par[0].0.is_empty());
    }
}
