//! Context pruning (paper §3.1, Algorithm 1).
//!
//! An axis step over a context *sequence* duplicates work wherever the
//! per-node regions overlap. Pruning shrinks the context to the nodes at
//! the cover's boundary:
//!
//! * `descendant` — drop every context node lying inside another context
//!   node's subtree (Algorithm 1: keep nodes with strictly increasing
//!   postorder rank during a pre-ordered scan).
//! * `ancestor` — drop every context node that is an ancestor of another
//!   context node (keep the deepest step of each chain).
//! * `following` — only the node with the *minimum postorder* rank
//!   matters: `(a, b)/following = (b)/following` whenever `b` follows `a`
//!   (region S of Figure 7(a) is empty).
//! * `preceding` — symmetrically, only the *maximum preorder* rank node
//!   remains.
//!
//! After pruning, the remaining `descendant`/`ancestor` context nodes
//! relate pairwise on the preceding/following axis — both their pre *and*
//! post ranks ascend — which is exactly the staircase shape the join
//! algorithms in [`crate::descendant`]/[`crate::ancestor`] require.

use staircase_accel::{Axis, Context, Doc, Pre};

/// Prunes `context` for `axis`. For non-partitioning axes the context is
/// returned unchanged (pruning is a property of the four region axes).
pub fn prune(doc: &Doc, context: &Context, axis: Axis) -> Context {
    match axis {
        Axis::Descendant => prune_descendant(doc, context),
        Axis::Ancestor => prune_ancestor(doc, context),
        Axis::Following => prune_following(doc, context),
        Axis::Preceding => prune_preceding(doc, context),
        _ => context.clone(),
    }
}

/// Algorithm 1: `descendant` pruning. Keeps context nodes whose postorder
/// rank exceeds every previously kept one; the dropped nodes lie inside a
/// kept node's subtree, so their descendant regions are covered.
pub fn prune_descendant(doc: &Doc, context: &Context) -> Context {
    let mut result: Vec<Pre> = Vec::with_capacity(context.len());
    prune_descendant_into(doc, context, &mut result);
    Context::from_sorted(result)
}

/// [`prune_descendant`] into a caller-provided buffer (cleared first), so
/// batch evaluation can reuse allocations across steps.
pub fn prune_descendant_into(doc: &Doc, context: &Context, out: &mut Vec<Pre>) {
    out.clear();
    let mut prev: Option<u32> = None;
    for c in context.iter() {
        let post = doc.post(c);
        if prev.is_none_or(|p| post > p) {
            out.push(c);
            prev = Some(post);
        }
    }
}

/// `ancestor` pruning: keeps the deepest node of every ancestor chain in
/// the context. A context node is dropped iff a later (in document order)
/// context node lies in its subtree; one look-ahead suffices because the
/// context is pre-sorted.
pub fn prune_ancestor(doc: &Doc, context: &Context) -> Context {
    let mut result: Vec<Pre> = Vec::with_capacity(context.len());
    prune_ancestor_into(doc, context, &mut result);
    Context::from_sorted(result)
}

/// [`prune_ancestor`] into a caller-provided buffer (cleared first), so
/// batch evaluation can reuse allocations across steps.
pub fn prune_ancestor_into(doc: &Doc, context: &Context, out: &mut Vec<Pre>) {
    out.clear();
    let slice = context.as_slice();
    for (i, &c) in slice.iter().enumerate() {
        match slice.get(i + 1) {
            // post(next) < post(c) together with pre(next) > pre(c) means
            // `next` descends from `c`: c's ancestors ⊂ next's ancestors.
            Some(&next) => {
                if doc.post(next) > doc.post(c) {
                    out.push(c);
                }
            }
            None => out.push(c),
        }
    }
}

/// `following` pruning: the whole context collapses to the node with the
/// minimum postorder rank.
pub fn prune_following(doc: &Doc, context: &Context) -> Context {
    context
        .iter()
        .min_by_key(|&c| doc.post(c))
        .map(Context::singleton)
        .unwrap_or_default()
}

/// `preceding` pruning: the whole context collapses to the node with the
/// maximum preorder rank (the last one — the context is pre-sorted).
pub fn prune_preceding(_doc: &Doc, context: &Context) -> Context {
    context
        .as_slice()
        .last()
        .map(|&c| Context::singleton(c))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure1, random_context, random_doc, reference};

    /// Figure 4: context (d,e,f,h,i,j) pruned for ancestor(-or-self) is
    /// (d,h,j).
    #[test]
    fn figure4_ancestor_pruning() {
        let doc = figure1();
        // names:  a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9
        let ctx = Context::from_unsorted(vec![3, 4, 5, 7, 8, 9]);
        let pruned = prune_ancestor(&doc, &ctx);
        assert_eq!(pruned.as_slice(), &[3, 7, 9]);
    }

    #[test]
    fn descendant_pruning_drops_covered_subtrees() {
        let doc = figure1();
        // e (pre 4) covers f..j; adding f, h, j changes nothing.
        let ctx = Context::from_unsorted(vec![4, 5, 7, 9]);
        let pruned = prune_descendant(&doc, &ctx);
        assert_eq!(pruned.as_slice(), &[4]);
    }

    #[test]
    fn descendant_pruning_keeps_disjoint_nodes() {
        let doc = figure1();
        let ctx = Context::from_unsorted(vec![1, 3, 5, 8]); // b, d, f, i
        let pruned = prune_descendant(&doc, &ctx);
        assert_eq!(pruned.as_slice(), &[1, 3, 5, 8]);
    }

    #[test]
    fn pruned_context_forms_staircase() {
        // Pre and post both strictly ascend after desc/anc pruning.
        for seed in 0..20 {
            let doc = random_doc(seed, 300);
            let ctx = random_context(&doc, seed ^ 0xABCD, 40);
            for pruned in [prune_descendant(&doc, &ctx), prune_ancestor(&doc, &ctx)] {
                let posts: Vec<u32> = pruned.iter().map(|c| doc.post(c)).collect();
                assert!(
                    posts.windows(2).all(|w| w[0] < w[1]),
                    "staircase broken: seed {seed}, posts {posts:?}"
                );
            }
        }
    }

    #[test]
    fn pruning_preserves_descendant_results() {
        for seed in 0..20 {
            let doc = random_doc(seed, 300);
            let ctx = random_context(&doc, seed ^ 0x1111, 30);
            let pruned = prune_descendant(&doc, &ctx);
            assert_eq!(
                reference(&doc, &ctx, Axis::Descendant),
                reference(&doc, &pruned, Axis::Descendant),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn pruning_preserves_ancestor_results() {
        for seed in 0..20 {
            let doc = random_doc(seed, 300);
            let ctx = random_context(&doc, seed ^ 0x2222, 30);
            let pruned = prune_ancestor(&doc, &ctx);
            assert_eq!(
                reference(&doc, &ctx, Axis::Ancestor),
                reference(&doc, &pruned, Axis::Ancestor),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn following_prunes_to_min_post_singleton() {
        let doc = figure1();
        let ctx = Context::from_unsorted(vec![1, 5, 6]); // b, f, g
        let pruned = prune_following(&doc, &ctx);
        // posts: b=1, f=5, g=3 → min post is b.
        assert_eq!(pruned.as_slice(), &[1]);
        assert_eq!(
            reference(&doc, &ctx, Axis::Following),
            reference(&doc, &pruned, Axis::Following)
        );
    }

    #[test]
    fn preceding_prunes_to_max_pre_singleton() {
        let doc = figure1();
        let ctx = Context::from_unsorted(vec![3, 5, 7]); // d, f, h
        let pruned = prune_preceding(&doc, &ctx);
        assert_eq!(pruned.as_slice(), &[7]);
        assert_eq!(
            reference(&doc, &ctx, Axis::Preceding),
            reference(&doc, &pruned, Axis::Preceding)
        );
    }

    #[test]
    fn horizontal_pruning_preserves_results_randomised() {
        for seed in 0..20 {
            let doc = random_doc(seed, 250);
            let ctx = random_context(&doc, seed ^ 0x3333, 25);
            if ctx.is_empty() {
                continue;
            }
            let f = prune_following(&doc, &ctx);
            assert_eq!(
                reference(&doc, &ctx, Axis::Following),
                reference(&doc, &f, Axis::Following),
                "following seed {seed}"
            );
            let p = prune_preceding(&doc, &ctx);
            assert_eq!(
                reference(&doc, &ctx, Axis::Preceding),
                reference(&doc, &p, Axis::Preceding),
                "preceding seed {seed}"
            );
        }
    }

    #[test]
    fn empty_context_stays_empty() {
        let doc = figure1();
        let empty = Context::empty();
        assert!(prune_descendant(&doc, &empty).is_empty());
        assert!(prune_ancestor(&doc, &empty).is_empty());
        assert!(prune_following(&doc, &empty).is_empty());
        assert!(prune_preceding(&doc, &empty).is_empty());
    }

    #[test]
    fn prune_dispatch_matches_specialised() {
        let doc = figure1();
        let ctx = Context::from_unsorted(vec![3, 4, 5, 7, 8, 9]);
        assert_eq!(
            prune(&doc, &ctx, Axis::Ancestor),
            prune_ancestor(&doc, &ctx)
        );
        assert_eq!(
            prune(&doc, &ctx, Axis::Descendant),
            prune_descendant(&doc, &ctx)
        );
        assert_eq!(
            prune(&doc, &ctx, Axis::Following),
            prune_following(&doc, &ctx)
        );
        assert_eq!(
            prune(&doc, &ctx, Axis::Preceding),
            prune_preceding(&doc, &ctx)
        );
        // Non-partitioning axes: unchanged.
        assert_eq!(prune(&doc, &ctx, Axis::Child), ctx);
    }

    #[test]
    fn pruning_is_idempotent() {
        for seed in 0..10 {
            let doc = random_doc(seed, 200);
            let ctx = random_context(&doc, seed ^ 0x4444, 30);
            let once = prune_descendant(&doc, &ctx);
            assert_eq!(prune_descendant(&doc, &once), once);
            let once = prune_ancestor(&doc, &ctx);
            assert_eq!(prune_ancestor(&doc, &once), once);
        }
    }
}
