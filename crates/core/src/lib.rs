//! # staircase-core
//!
//! The **staircase join** (Grust, van Keulen, Teubner: *Staircase Join:
//! Teach a Relational DBMS to Watch its (Axis) Steps*, VLDB 2003) — a
//! tree-aware join operator that evaluates the four partitioning XPath axes
//! over the pre/post-plane encoding of [`staircase_accel`].
//!
//! The operator encapsulates three pieces of "tree knowledge":
//!
//! 1. **Pruning** (§3.1, [`prune`]) — context nodes whose result region is
//!    covered by another context node are removed; what remains traces a
//!    *staircase* through the plane. For `following`/`preceding` the
//!    context degenerates to a single node.
//! 2. **Partitioned scanning** (§3.2, [`Variant::Basic`]) — one sequential
//!    scan of the `doc` table per step, visiting each partition
//!    `[cᵢ, cᵢ₊₁)` once. The result is produced duplicate-free and in
//!    document order, so no `unique`/`sort` post-processing is needed.
//! 3. **Skipping** (§3.3/§4.2, [`Variant::Skipping`] and
//!    [`Variant::EstimationSkipping`]) — empty-region analysis ends each
//!    partition scan at the first miss; Equation (1) turns the bulk of the
//!    `descendant` scan into a comparison-free copy phase. The join then
//!    touches at most `|result| + |context|` nodes.
//!
//! Every join returns [`StepStats`] alongside the result so experiments can
//! report exact node-access counts (paper Figure 11(a)/(c)), not just
//! wall-clock times.
//!
//! ## Quick example
//!
//! Axis-specific entry points ([`descendant`], [`ancestor`], …) or the
//! generic, fallible [`try_axis_step`]:
//!
//! ```
//! use staircase_accel::{Axis, Context, Doc};
//! use staircase_core::{descendant, try_axis_step, Variant};
//!
//! let doc = Doc::from_xml("<a><b><c/></b><d/></a>").unwrap();
//! let ctx = Context::singleton(doc.root());
//! let (result, stats) = descendant(&doc, &ctx, Variant::EstimationSkipping);
//! assert_eq!(result.len(), 3); // b, c, d
//! assert_eq!(stats.result_size, 3);
//!
//! let (same, _) = try_axis_step(&doc, &ctx, Axis::Descendant, Variant::default())
//!     .expect("descendant is a partitioning axis");
//! assert_eq!(result, same);
//! assert!(try_axis_step(&doc, &ctx, Axis::Child, Variant::default()).is_err());
//! ```
//!
//! Full XPath evaluation — engine selection, prepared queries, cached
//! auxiliary structures — lives in `staircase-xpath`'s `Session` type;
//! this crate is the operator library underneath it.
//!
//! ## Data layout & hot loops
//!
//! Every operator here bottoms out in a scan of two dense, parallel
//! columns: `Doc::kind_column()` (`&[u8]`, one kind byte per pre rank)
//! and `Doc::tag_column()` (`&[TagId]`). The per-element filters those
//! scans end in — `kind != Attribute` in every copy phase, `kind ==
//! Element && tag == t` in name tests — are routed through the
//! chunked bitmask kernels of [`mask`]: 64 positions fold into one
//! `u64` predicate word (byte-wise SWAR compare on the kind column, a
//! single vector compare under `--cfg stair_simd`), and survivors are
//! materialized with one `trailing_zeros` per *match* instead of one
//! branch per *lane*. Lanes are counted from the window's own start
//! offset, so unaligned heads are free and only a sub-word tail takes
//! the partial-mask path.
//!
//! **Why statistics parity holds.** The kernels replace only loops
//! whose [`StepStats`] counters are *arithmetic*: a copy phase charges
//! `nodes_copied` per **position** of the range regardless of whether
//! the position survives the attribute filter, and a Basic-variant
//! window scan charges `nodes_scanned` for the whole window. Masking
//! changes how the surviving positions are found, never how many
//! positions are charged, so masked and scalar paths report
//! byte-identical `StepStats` (proptested). Loops whose extent is
//! data-dependent — the skipping variants' first-miss early-outs, the
//! ancestor subtree jumps — stay scalar: their counters depend on
//! *where* the scan stopped, which a batched mask cannot reproduce
//! without doing the scalar work anyway.
//!
//! **Masked name tests vs. the fragment join.** A name test over a
//! candidate list costs one gathered kind/tag load per candidate
//! ([`mask::select_tag_candidates`]); once a per-tag
//! `TagBitmap` exists ([`TagIndex::bitmap`]), the same test is one
//! bit-probe per candidate — but *building* the bitmap costs a full
//! column pass. [`DocStats::bitmap_filter_cost`] prices the probe
//! path against the plain masked filter and the fragment join, and
//! [`DocStats::bitmap_worthwhile`] gates the lazy build so only
//! filters wide enough to amortize it ever trigger one; planned steps
//! whose tests take the masked path carry a `[mask]` marker in
//! `--explain` output.
//!
//! ## Failure model
//!
//! The kernels themselves are infallible over valid planes — they
//! neither allocate fallibly nor touch I/O — but two *external* stop
//! conditions thread through them:
//!
//! * **Governed stops** ([`governor`]): when an ambient
//!   [`governor::Budget`] is installed, every scan checks it at
//!   amortized boundaries (partitions, [`governor::SCAN_CHUNK`]-sized
//!   mask chunks, merged-scan positions, twig seeks) and **abandons the
//!   pass** on a trip, returning partial state. Partial results are
//!   *garbage by contract*: only the layer that installed the budget
//!   (the lane executor upstairs) may interpret them, and it discards
//!   them and reports the typed trip cause instead. A budget trips at
//!   most once (latched) and never un-trips.
//! * **Panics** ([`WorkerPool`]): a panicking pooled job is caught at
//!   the task boundary. [`WorkerPool::run`] re-raises the first payload
//!   after the batch drains (legacy contract);
//!   [`WorkerPool::run_caught`] returns per-job `Result`s so a caller
//!   can fail one job's query and keep its siblings — either way the
//!   pool's threads survive and the pool stays reusable. Scratch
//!   buffers held by a panicked task are dropped, not poisoned; the
//!   bounded [`Scratch`] pools simply re-grow.
//!
//! What survives what: a governed trip loses only the tripped pass's
//! partial output; a pooled panic loses only that task's batch slot;
//! the [`WorkerPool`], [`ScratchPool`], cached [`TagIndex`], and the
//! document itself remain valid in every case. Fault-injection hooks
//! for exercising these paths live in [`faults`] (compiled out unless
//! `--cfg stair_faults`).

#![warn(missing_docs)]
#![cfg_attr(stair_simd, feature(portable_simd))]
#![allow(unexpected_cfgs)]

mod anc;
mod batch;
pub mod cost;
mod desc;
mod exists;
pub mod faults;
pub mod governor;
mod horiz;
mod list;
pub mod mask;
mod morsel;
mod parallel;
mod pool;
mod prune;
mod stats;
pub mod twig;

pub use anc::ancestor;
pub use batch::{
    ancestor_many, ancestor_on_list_many, descendant_many, descendant_on_list_many, Scratch,
};
pub use cost::{Calibrator, DocStats, RuntimeStats, TwigLegCost};
pub use desc::{descendant, descendant_fused, guaranteed_result_estimate};
pub use exists::{
    has_ancestor_in, has_ancestor_in_many, has_ancestor_in_many_par, has_child_in,
    has_child_in_many, has_child_in_many_par, has_descendant_in, has_descendant_in_many,
    has_descendant_in_many_par,
};
pub use governor::{Budget, Trip};
pub use horiz::{
    following, following_many, following_many_par, preceding, preceding_many, preceding_many_par,
};
pub use list::{ancestor_on_list, descendant_on_list, TagIndex, CRACK_CONVERGE_TOUCHES};
pub use morsel::{
    ancestor_many_par, ancestor_on_list_many_par, descendant_many_par, descendant_on_list_many_par,
};
pub use parallel::{
    ancestor_parallel, ancestor_parallel_on, descendant_parallel, descendant_parallel_on,
};
pub use pool::{ScratchPool, WorkerPool};
pub use prune::{
    prune, prune_ancestor, prune_ancestor_into, prune_descendant, prune_descendant_into,
    prune_following, prune_preceding,
};
pub use staircase_storage::TagBitmap;
pub use stats::StepStats;
pub use twig::{twig_match, ChainStep, SpineLeg, TwigEdge};

use staircase_accel::{Axis, Context, Doc};

/// Which staircase-join refinement to run.
///
/// `Basic` is Algorithm 2 (no skipping), `Skipping` adds the early-out of
/// Algorithm 3, and `EstimationSkipping` adds the Equation (1) copy phase
/// of Algorithm 4. All three compute identical results; they differ only
/// in how many nodes they touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// Algorithm 2: scan every partition to its end.
    Basic,
    /// Algorithm 3: stop a partition scan at the first miss.
    Skipping,
    /// Algorithm 4: comparison-free copy phase, then a bounded scan.
    #[default]
    EstimationSkipping,
}

/// The error of [`try_axis_step`]: the axis handed in is not one of the
/// four partitioning axes the staircase join evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedAxis(pub Axis);

impl std::fmt::Display for UnsupportedAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "staircase join evaluates partitioning axes only, got {}",
            self.0
        )
    }
}

impl std::error::Error for UnsupportedAxis {}

/// Evaluates one partitioning-axis step with the staircase join.
///
/// `axis` must be one of `descendant`, `ancestor`, `following`,
/// `preceding` (use [`axis_is_supported`] to check); the or-self variants
/// and the remaining axes are layered on top by `staircase-xpath`.
///
/// # Errors
///
/// [`UnsupportedAxis`] if `axis` is not a partitioning axis.
pub fn try_axis_step(
    doc: &Doc,
    context: &Context,
    axis: Axis,
    variant: Variant,
) -> Result<(Context, StepStats), UnsupportedAxis> {
    match axis {
        Axis::Descendant => Ok(descendant(doc, context, variant)),
        Axis::Ancestor => Ok(ancestor(doc, context, variant)),
        Axis::Following => Ok(following(doc, context)),
        Axis::Preceding => Ok(preceding(doc, context)),
        other => Err(UnsupportedAxis(other)),
    }
}

/// `true` if [`try_axis_step`] accepts `axis`.
pub fn axis_is_supported(axis: Axis) -> bool {
    axis.is_partitioning()
}

#[cfg(test)]
pub(crate) mod testutil {
    use staircase_accel::{Axis, Context, Doc, Pre};

    /// The paper's running example: a(b(c),d,e(f(g,h),i(j))).
    pub fn figure1() -> Doc {
        Doc::from_xml("<a><b><c/></b><d/><e><f><g/><h/></f><i><j/></i></e></a>").unwrap()
    }

    /// Brute-force reference step evaluation (duplicate-free, document
    /// order) straight from the axis predicate.
    pub fn reference(doc: &Doc, ctx: &Context, axis: Axis) -> Vec<Pre> {
        doc.pres()
            .filter(|&v| ctx.iter().any(|c| axis.contains(doc, c, v)))
            .collect()
    }

    /// A small deterministic pseudo-random document for exhaustive checks.
    pub fn random_doc(seed: u64, size_hint: usize) -> Doc {
        use staircase_accel::EncodingBuilder;
        let mut b = EncodingBuilder::new();
        let tags = ["p", "q", "r", "s"];
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        b.open_element("root");
        let mut depth = 1usize;
        let mut last_was_text = false;
        for _ in 0..size_hint {
            match next() % 5 {
                0 | 1 => {
                    b.open_element(tags[(next() % 4) as usize]);
                    depth += 1;
                    last_was_text = false;
                }
                2 if depth > 1 => {
                    b.close_element();
                    depth -= 1;
                    last_was_text = false;
                }
                3 => {
                    if !last_was_text {
                        b.text("x");
                        last_was_text = true;
                    }
                }
                _ => {
                    if next() % 3 == 0 {
                        b.open_element(tags[(next() % 4) as usize]);
                        b.attribute("id", "a");
                        b.close_element();
                    } else {
                        b.comment("c");
                    }
                    last_was_text = false;
                }
            }
        }
        while depth > 0 {
            b.close_element();
            depth -= 1;
        }
        b.finish()
    }

    /// Deterministic pseudo-random context over `doc`.
    pub fn random_context(doc: &Doc, seed: u64, approx: usize) -> Context {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = doc.len() as u64;
        let pres: Vec<Pre> = (0..approx).map(|_| (next() % n) as Pre).collect();
        Context::from_unsorted(pres)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn axis_step_dispatches_all_partitioning_axes() {
        let doc = figure1();
        let ctx = Context::singleton(5); // f
        for axis in Axis::PARTITIONING {
            let (got, _) = try_axis_step(&doc, &ctx, axis, Variant::default()).unwrap();
            assert_eq!(got.as_slice(), &reference(&doc, &ctx, axis)[..], "{axis}");
        }
    }

    #[test]
    fn try_axis_step_rejects_child() {
        let doc = figure1();
        let err = try_axis_step(&doc, &Context::singleton(0), Axis::Child, Variant::Basic);
        assert_eq!(err.unwrap_err(), UnsupportedAxis(Axis::Child));
    }

    #[test]
    fn supported_axis_predicate() {
        assert!(axis_is_supported(Axis::Descendant));
        assert!(axis_is_supported(Axis::Preceding));
        assert!(!axis_is_supported(Axis::Child));
        assert!(!axis_is_supported(Axis::SelfAxis));
    }
}
