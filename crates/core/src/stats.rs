//! Access-pattern statistics reported by every join.

/// Exact node-access counts for one axis step.
///
/// The paper's Experiments 1 and 2 (Figure 11(a)/(c)) are plots of these
/// counters, so they are first-class results rather than debug output.
/// Invariants maintained by all join variants:
///
/// * `nodes_touched() = nodes_scanned + nodes_copied` — every touched node
///   is either compared against the staircase boundary (scanned) or
///   appended comparison-free by the copy phase (copied).
/// * With skipping enabled, `nodes_touched() ≤ result_size + context_out +
///   duplicates-free slack` (paper §3.3: at most `|result| + |context|`
///   nodes are touched for `descendant`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Context size before pruning.
    pub context_in: usize,
    /// Context size after pruning (the staircase's steps).
    pub context_out: usize,
    /// Nodes inspected with a postorder-rank comparison.
    pub nodes_scanned: u64,
    /// Nodes appended by the comparison-free copy phase (Algorithm 4).
    pub nodes_copied: u64,
    /// Nodes jumped over without being touched at all.
    pub nodes_skipped: u64,
    /// Number of result nodes.
    pub result_size: usize,
    /// Number of plane partitions visited (one per staircase step).
    pub partitions: usize,
    /// Binary/galloping cursor repositionings (leapfrog-style operators;
    /// zero for the scan-shaped joins, whose movement is all sequential).
    pub seeks: u64,
}

impl StepStats {
    /// Total nodes the join touched (read from memory).
    pub fn nodes_touched(&self) -> u64 {
        self.nodes_scanned + self.nodes_copied
    }

    /// Context nodes removed by pruning.
    pub fn pruned(&self) -> usize {
        self.context_in - self.context_out
    }

    /// The step's *observed* cost in the cost model's unit (nodes
    /// touched), directly comparable to the pre-execution estimates of
    /// [`crate::cost::DocStats`] — `EXPLAIN` output next to what
    /// actually happened.
    pub fn observed_cost(&self) -> f64 {
        self.nodes_touched() as f64
    }

    /// Merges per-partition statistics (used by the parallel join).
    pub fn merge(&mut self, other: &StepStats) {
        self.nodes_scanned += other.nodes_scanned;
        self.nodes_copied += other.nodes_copied;
        self.nodes_skipped += other.nodes_skipped;
        self.result_size += other.result_size;
        self.partitions += other.partitions;
        self.seeks += other.seeks;
    }
}

impl std::fmt::Display for StepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ctx {}→{}, scanned {}, copied {}, skipped {}, result {}, partitions {}, seeks {}",
            self.context_in,
            self.context_out,
            self.nodes_scanned,
            self.nodes_copied,
            self.nodes_skipped,
            self.result_size,
            self.partitions,
            self.seeks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_is_scanned_plus_copied() {
        let s = StepStats {
            nodes_scanned: 10,
            nodes_copied: 32,
            ..Default::default()
        };
        assert_eq!(s.nodes_touched(), 42);
    }

    #[test]
    fn pruned_counts_removed_context() {
        let s = StepStats {
            context_in: 10,
            context_out: 4,
            ..Default::default()
        };
        assert_eq!(s.pruned(), 6);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StepStats {
            context_in: 5,
            context_out: 5,
            nodes_scanned: 1,
            nodes_copied: 2,
            nodes_skipped: 3,
            result_size: 4,
            partitions: 1,
            seeks: 7,
        };
        let b = StepStats {
            nodes_scanned: 10,
            nodes_copied: 20,
            nodes_skipped: 30,
            result_size: 40,
            partitions: 2,
            seeks: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes_scanned, 11);
        assert_eq!(a.nodes_copied, 22);
        assert_eq!(a.nodes_skipped, 33);
        assert_eq!(a.result_size, 44);
        assert_eq!(a.partitions, 3);
        assert_eq!(a.seeks, 12);
        assert_eq!(a.context_in, 5); // context fields not merged
    }

    #[test]
    fn display_is_informative() {
        let s = StepStats {
            context_in: 2,
            context_out: 1,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("ctx 2→1"));
    }
}
