//! Worst-case-optimal twig matching: a multiway leapfrog intersection
//! over pre/post tag fragments.
//!
//! Step-at-a-time evaluation of a branching path (`//a[b]//c[d]`)
//! materializes every intermediate context, so on skewed documents a
//! single step's result can dwarf the final twig match set — the blowup
//! Leapfrog Triejoin (Veldhuizen) and "Skew Strikes Back" (Ngo, Ré,
//! Rudra) prove a multiway intersection avoids. The pre-sorted per-tag
//! fragments of [`crate::TagIndex`] are leapfrog-ready ordered
//! relations, and pre/post containment is a pure range predicate, so
//! the whole pattern can be answered with sorted cursors instead of
//! materialized contexts.
//!
//! A twig pattern here is a *spine* — the chain of steps whose last leg
//! is the query's output — plus, per spine leg, any number of
//! existential *chains* (the `[b]`-style predicates, themselves
//! downward paths). [`twig_match`] evaluates the pattern in three
//! phases, every cursor movement a gallop (`partition_point`) counted
//! in [`StepStats::seeks`]:
//!
//! 1. **Chain closure** — within each predicate chain, the useful set
//!    (entries that root a full chain match) is computed bottom-up, so
//!    a later "does `v` satisfy `[b/c]`?" probe is a single seek into a
//!    pre-filtered sorted list.
//! 2. **Pivot anchoring** — the spine leg with the *smallest* fragment
//!    becomes the pivot. Its candidates are filtered by the pivot's own
//!    chains and verified *upward*: the candidate's ancestor path (at
//!    most `height` nodes) is matched against the spine legs above the
//!    pivot with a small feasible-position sweep that handles mixed
//!    descendant/child edges, each position checked by fragment
//!    membership, chain probes, and finally containment in the pruned
//!    context. No fragment larger than the pivot's is ever walked.
//! 3. **Descent** — from the anchored pivot bindings, the legs below
//!    the pivot are joined one by one with the on-list staircase join
//!    ([`crate::descendant_on_list`]'s partition walk) or a per-window
//!    child scan, chain-filtering as it goes. Output is the binding of
//!    the last spine leg only, duplicate-free and in document order.

use std::borrow::Cow;

use staircase_accel::{Context, Doc, Post, Pre, NO_PARENT};

use crate::list::descendant_list_partitions;
use crate::prune::prune_descendant;
use crate::stats::StepStats;

/// The structural relation between a twig leg and its parent leg (or
/// the context, for the first spine leg).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TwigEdge {
    /// `descendant::` — strict pre/post containment.
    Descendant,
    /// `child::` — the parent pointer relation.
    Child,
}

/// One downward step of an existential predicate chain: `edge` relates
/// this step's candidates to the previous chain step (or to the spine
/// leg the chain hangs off, for the first step).
#[derive(Debug, Clone, Copy)]
pub struct ChainStep<'a> {
    /// Relation to the previous chain step / owning spine leg.
    pub edge: TwigEdge,
    /// Sorted pre ranks of this step's candidates (a tag fragment, or
    /// the full element column for a wildcard).
    pub list: &'a [Pre],
}

/// One spine leg of a twig pattern, with the existential chains that
/// must hold at every binding of this leg.
#[derive(Debug, Clone)]
pub struct SpineLeg<'a> {
    /// Relation to the previous spine leg (or the context, for the
    /// first leg).
    pub edge: TwigEdge,
    /// Sorted pre ranks of this leg's candidates.
    pub list: &'a [Pre],
    /// Predicate chains rooted at this leg; each must be non-empty.
    pub chains: Vec<Vec<ChainStep<'a>>>,
}

/// How the first spine leg relates to the query context.
enum Top<'a> {
    /// Descendant edge: containment in the pruned context staircase
    /// (disjoint subtree windows → one gallop decides membership).
    Desc { steps: &'a [Pre] },
    /// Child edge: the node's parent must be a raw context node.
    Child { raw: &'a [Pre] },
}

/// A spine leg after chain closure: each chain reduced to its first
/// edge plus the useful set a single probe decides against.
struct PreparedLeg<'a> {
    edge: TwigEdge,
    list: &'a [Pre],
    chains: Vec<(TwigEdge, Cow<'a, [Pre]>)>,
}

struct Matcher<'d> {
    doc: &'d Doc,
    post: &'d [Post],
    stats: StepStats,
    /// Cooperative stop at seek granularity: on a trip probes answer
    /// `false` and scans bail, so the (garbage) partial result is
    /// produced quickly and discarded by the governed caller.
    gov: crate::governor::Ticker,
}

impl<'d> Matcher<'d> {
    /// Strict pre/post containment: `v` is a descendant of `anc`.
    #[inline]
    fn is_desc(&self, anc: Pre, v: Pre) -> bool {
        v > anc && self.post[v as usize] < self.post[anc as usize]
    }

    /// Does `p` have a descendant in the sorted `list`? Descendants of
    /// `p` occupy a contiguous pre range starting right after `p`, so
    /// one gallop plus one containment compare decides it.
    fn has_desc_in(&mut self, list: &[Pre], p: Pre) -> bool {
        crate::faults::fail_point("core::twig::seek");
        self.stats.seeks += 1;
        if self.gov.tick(1) {
            return false;
        }
        let idx = list.partition_point(|&q| q <= p);
        match list.get(idx) {
            Some(&q) => {
                self.stats.nodes_scanned += 1;
                self.is_desc(p, q)
            }
            None => false,
        }
    }

    /// Does `p` have a *child* in the sorted `list`? Walks the list
    /// entries inside `p`'s subtree, jumping past the subtree of every
    /// deeper entry (the ancestor-join skip idiom), so each touched
    /// entry sits in a distinct child subtree of `p`.
    fn has_child_in(&mut self, list: &[Pre], p: Pre) -> bool {
        crate::faults::fail_point("core::twig::seek");
        self.stats.seeks += 1;
        if self.gov.tick(1) {
            return false;
        }
        let mut j = list.partition_point(|&q| q <= p);
        while let Some(&q) = list.get(j) {
            if !self.is_desc(p, q) {
                return false;
            }
            self.stats.nodes_scanned += 1;
            if self.gov.tick(1) {
                return false;
            }
            if self.doc.parent(q) == p {
                return true;
            }
            // q is deeper than a child: no entry inside q's subtree can
            // be a child of p either — jump the guaranteed block.
            let sub_end = q + 1 + self.doc.subtree_size(q);
            self.stats.seeks += 1;
            let skipped = list[j + 1..].partition_point(|&r| r < sub_end);
            self.stats.nodes_skipped += skipped as u64;
            j += 1 + skipped;
        }
        false
    }

    fn edge_probe(&mut self, edge: TwigEdge, list: &[Pre], p: Pre) -> bool {
        match edge {
            TwigEdge::Descendant => self.has_desc_in(list, p),
            TwigEdge::Child => self.has_child_in(list, p),
        }
    }

    /// Bottom-up chain closure: the subset of the chain's *first* step
    /// list whose entries root a complete chain match. Empty result ⇒
    /// no node anywhere satisfies the chain.
    fn chain_useful<'a>(&mut self, chain: &[ChainStep<'a>]) -> Cow<'a, [Pre]> {
        let mut valid: Cow<'a, [Pre]> = Cow::Borrowed(chain[chain.len() - 1].list);
        for j in (0..chain.len() - 1).rev() {
            let edge = chain[j + 1].edge;
            let mut filtered = Vec::new();
            for &p in chain[j].list {
                self.stats.nodes_scanned += 1;
                if self.gov.tick(1) {
                    return Cow::Owned(Vec::new());
                }
                if self.edge_probe(edge, &valid, p) {
                    filtered.push(p);
                }
            }
            if filtered.is_empty() {
                return Cow::Owned(filtered);
            }
            valid = Cow::Owned(filtered);
        }
        valid
    }

    /// All chains of `leg` hold at `v`.
    fn chains_ok(&mut self, leg: &PreparedLeg<'_>, v: Pre) -> bool {
        // Split borrows: probe against a clone of the Cow's slice is
        // avoided by iterating over indices.
        for i in 0..leg.chains.len() {
            let (edge, ref useful) = leg.chains[i];
            // `useful` borrows `leg`, `self` is distinct — no conflict.
            if !self.edge_probe(edge, useful, v) {
                return false;
            }
        }
        true
    }

    /// The first spine leg's relation to the context holds at `pos`.
    fn top_ok(&mut self, top: &Top<'_>, pos: Pre) -> bool {
        self.stats.seeks += 1;
        match *top {
            Top::Desc { steps } => {
                // Pruned steps have pairwise disjoint subtree windows,
                // so only the last step before `pos` can contain it.
                let idx = steps.partition_point(|&c| c < pos);
                idx > 0 && self.is_desc(steps[idx - 1], pos)
            }
            Top::Child { raw } => {
                let p = self.doc.parent(pos);
                p != NO_PARENT && raw.binary_search(&p).is_ok()
            }
        }
    }

    /// `pos` can host `leg`: fragment membership plus the leg's chains.
    fn position_matches(&mut self, leg: &PreparedLeg<'_>, pos: Pre) -> bool {
        self.stats.seeks += 1;
        if leg.list.binary_search(&pos).is_err() {
            return false;
        }
        self.chains_ok(leg, pos)
    }

    /// Upward verification of one pivot candidate: can the spine legs
    /// above the pivot (`legs`) be assigned to positions on the
    /// candidate's ancestor path `anc` (index 0 = parent) so that every
    /// edge, fragment membership, chain, and the top constraint hold?
    ///
    /// A greedy sweep is not enough — a child edge couples *adjacent*
    /// positions — so the feasible position set is propagated leg by
    /// leg: a child edge shifts every feasible position up by one, a
    /// descendant edge opens everything strictly above the lowest
    /// feasible position.
    fn verify_upward(
        &mut self,
        legs: &[PreparedLeg<'_>],
        pivot_edge: TwigEdge,
        anc: &[Pre],
        top: &Top<'_>,
    ) -> bool {
        if legs.is_empty() {
            // Pivot is the first leg: the top constraint was applied
            // during candidate generation.
            return true;
        }
        let d = anc.len();
        let mut feas: Vec<usize> = match pivot_edge {
            TwigEdge::Child => {
                if d > 0 {
                    vec![0]
                } else {
                    Vec::new()
                }
            }
            TwigEdge::Descendant => (0..d).collect(),
        };
        for j in (0..legs.len()).rev() {
            feas.retain(|&t| self.position_matches(&legs[j], anc[t]));
            if feas.is_empty() {
                return false;
            }
            if j == 0 {
                return feas.iter().any(|&t| {
                    let pos = anc[t];
                    self.top_ok(top, pos)
                });
            }
            feas = match legs[j].edge {
                TwigEdge::Child => feas.iter().map(|&t| t + 1).filter(|&t| t < d).collect(),
                TwigEdge::Descendant => (feas[0] + 1..d).collect(),
            };
            if feas.is_empty() {
                return false;
            }
        }
        unreachable!("loop returns at j == 0")
    }

    /// Children of any `parents` entry found in the sorted `list`.
    /// Per parent, walks list entries inside the subtree window with
    /// the deep-entry subtree jump; windows of nested parents can
    /// interleave, so the result is sorted afterwards (no duplicates —
    /// every node has one parent).
    fn children_on_list(&mut self, list: &[Pre], parents: &[Pre]) -> Vec<Pre> {
        let mut out = Vec::new();
        'parents: for &c in parents {
            self.stats.seeks += 1;
            self.stats.partitions += 1;
            if self.gov.tick(1) {
                break;
            }
            let mut j = list.partition_point(|&q| q <= c);
            while let Some(&q) = list.get(j) {
                if !self.is_desc(c, q) {
                    break;
                }
                self.stats.nodes_scanned += 1;
                if self.gov.tick(1) {
                    break 'parents;
                }
                if self.doc.parent(q) == c {
                    out.push(q);
                    j += 1;
                } else {
                    let sub_end = q + 1 + self.doc.subtree_size(q);
                    self.stats.seeks += 1;
                    let skipped = list[j + 1..].partition_point(|&r| r < sub_end);
                    self.stats.nodes_skipped += skipped as u64;
                    j += 1 + skipped;
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// The ancestor path of `v`, nearest first (`buf[0]` = parent).
fn ancestor_path(doc: &Doc, v: Pre, buf: &mut Vec<Pre>) {
    buf.clear();
    let mut p = doc.parent(v);
    while p != NO_PARENT {
        buf.push(p);
        p = doc.parent(p);
    }
}

/// Evaluates a twig pattern against `context`, returning the bindings
/// of the **last** spine leg only, duplicate-free and in document
/// order — node- and order-identical to evaluating the same pattern
/// step-at-a-time with semijoin predicates.
///
/// Every leg and chain-step list must be sorted ascending (tag
/// fragments and the element column already are). [`StepStats::seeks`]
/// counts actual cursor repositionings (gallops/binary searches);
/// `nodes_scanned`/`nodes_skipped` count list entries compared/jumped.
///
/// # Panics
///
/// If `spine` is empty or any leg carries an empty chain.
pub fn twig_match(doc: &Doc, spine: &[SpineLeg<'_>], context: &Context) -> (Context, StepStats) {
    assert!(!spine.is_empty(), "twig pattern needs at least one leg");
    let mut m = Matcher {
        doc,
        post: doc.post_column(),
        stats: StepStats {
            context_in: context.len(),
            context_out: context.len(),
            ..Default::default()
        },
        gov: crate::governor::Ticker::ambient(),
    };

    // The pruned staircase is shared by pivot anchoring and the
    // per-candidate top-constraint probes.
    let pruned;
    let top = match spine[0].edge {
        TwigEdge::Descendant => {
            pruned = prune_descendant(doc, context);
            m.stats.context_out = pruned.len();
            Top::Desc {
                steps: pruned.as_slice(),
            }
        }
        TwigEdge::Child => Top::Child {
            raw: context.as_slice(),
        },
    };

    if context.is_empty() || spine.iter().any(|l| l.list.is_empty()) {
        return (Context::empty(), m.stats);
    }

    // Phase 1: chain closure. An empty useful set proves the chain
    // unsatisfiable document-wide, hence the twig result empty.
    let mut legs: Vec<PreparedLeg<'_>> = Vec::with_capacity(spine.len());
    for leg in spine {
        let mut chains = Vec::with_capacity(leg.chains.len());
        for chain in &leg.chains {
            assert!(!chain.is_empty(), "predicate chain needs at least one step");
            let useful = m.chain_useful(chain);
            if useful.is_empty() {
                return (Context::empty(), m.stats);
            }
            chains.push((chain[0].edge, useful));
        }
        legs.push(PreparedLeg {
            edge: leg.edge,
            list: leg.list,
            chains,
        });
    }

    // Phase 2: anchor the pivot — the smallest spine fragment (ties
    // break toward the context-restricted first leg).
    let pivot_idx = (0..legs.len())
        .min_by_key(|&j| legs[j].list.len())
        .expect("non-empty spine");
    let mut anchored: Vec<Pre> = Vec::new();
    if pivot_idx == 0 {
        match top {
            Top::Desc { steps } => {
                descendant_list_partitions(
                    doc,
                    legs[0].list,
                    steps,
                    doc.len() as Pre,
                    &mut anchored,
                    &mut m.stats,
                );
            }
            Top::Child { raw } => {
                anchored = m.children_on_list(legs[0].list, raw);
            }
        }
        anchored.retain(|&v| m.chains_ok(&legs[0], v));
    } else {
        let mut anc_buf = Vec::new();
        for &v in legs[pivot_idx].list {
            m.stats.nodes_scanned += 1;
            if m.gov.tick(1) {
                break;
            }
            if !m.chains_ok(&legs[pivot_idx], v) {
                continue;
            }
            ancestor_path(doc, v, &mut anc_buf);
            if m.verify_upward(&legs[..pivot_idx], legs[pivot_idx].edge, &anc_buf, &top) {
                anchored.push(v);
            }
        }
    }

    // Phase 3: descend from the anchored pivot bindings to the output
    // leg, chain-filtering every intermediate frontier.
    let mut current = anchored;
    for leg in &legs[pivot_idx + 1..] {
        if current.is_empty() || m.gov.tick(1) {
            break;
        }
        let mut next = Vec::new();
        match leg.edge {
            TwigEdge::Descendant => {
                let ctx = Context::from_sorted(current);
                let steps = prune_descendant(doc, &ctx);
                descendant_list_partitions(
                    doc,
                    leg.list,
                    steps.as_slice(),
                    doc.len() as Pre,
                    &mut next,
                    &mut m.stats,
                );
            }
            TwigEdge::Child => {
                next = m.children_on_list(leg.list, &current);
            }
        }
        next.retain(|&v| m.chains_ok(leg, v));
        current = next;
    }

    m.stats.result_size = current.len();
    (Context::from_sorted(current), m.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::TagIndex;
    use crate::testutil::{random_context, random_doc};
    use staircase_accel::NodeKind;

    fn edge_holds(doc: &Doc, edge: TwigEdge, parent: Pre, child: Pre) -> bool {
        match edge {
            TwigEdge::Descendant => child > parent && doc.post(child) < doc.post(parent),
            TwigEdge::Child => doc.parent(child) == parent,
        }
    }

    fn chain_holds(doc: &Doc, chain: &[ChainStep<'_>], from: Pre) -> bool {
        match chain.first() {
            None => true,
            Some(step) => step
                .list
                .iter()
                .any(|&q| edge_holds(doc, step.edge, from, q) && chain_holds(doc, &chain[1..], q)),
        }
    }

    /// Reference semantics: chained semijoins, exactly the
    /// step-at-a-time plan with existential predicates.
    fn brute(doc: &Doc, spine: &[SpineLeg<'_>], context: &Context) -> Vec<Pre> {
        let mut frontier: Vec<Pre> = context.iter().collect();
        for leg in spine {
            let mut next = Vec::new();
            for &v in leg.list {
                if frontier.iter().any(|&f| edge_holds(doc, leg.edge, f, v))
                    && leg.chains.iter().all(|c| chain_holds(doc, c, v))
                {
                    next.push(v);
                }
            }
            frontier = next;
        }
        frontier
    }

    fn check(doc: &Doc, spine: &[SpineLeg<'_>], context: &Context, label: &str) {
        let want = brute(doc, spine, context);
        let (got, stats) = twig_match(doc, spine, context);
        assert_eq!(got.as_slice(), &want[..], "{label}");
        assert_eq!(stats.result_size, want.len(), "{label}: result_size");
        assert_eq!(stats.context_in, context.len(), "{label}: context_in");
    }

    fn fixture() -> Doc {
        // Three a-blocks: first has b and c(d); second has b only;
        // third has c without d plus a nested a(b, c(d)).
        Doc::from_xml(
            "<root><a><b/><c><d/></c></a><a><b/><x/></a>\
             <a><c/><a><b/><c><d/><d/></c></a></a><c><d/></c></root>",
        )
        .unwrap()
    }

    #[test]
    fn two_leg_twig_with_chains_matches_brute_force() {
        let doc = fixture();
        let idx = TagIndex::build(&doc);
        let (a, b, c, d) = (
            idx.fragment_by_name(&doc, "a"),
            idx.fragment_by_name(&doc, "b"),
            idx.fragment_by_name(&doc, "c"),
            idx.fragment_by_name(&doc, "d"),
        );
        // //a[b]//c[d]
        let spine = vec![
            SpineLeg {
                edge: TwigEdge::Descendant,
                list: a,
                chains: vec![vec![ChainStep {
                    edge: TwigEdge::Descendant,
                    list: b,
                }]],
            },
            SpineLeg {
                edge: TwigEdge::Descendant,
                list: c,
                chains: vec![vec![ChainStep {
                    edge: TwigEdge::Descendant,
                    list: d,
                }]],
            },
        ];
        let ctx = Context::singleton(doc.root());
        check(&doc, &spine, &ctx, "//a[b]//c[d]");
        let (got, stats) = twig_match(&doc, &spine, &ctx);
        assert!(!got.is_empty(), "fixture has matches");
        assert!(stats.seeks > 0, "leapfrog must report real seeks");
    }

    #[test]
    fn child_edges_and_child_chains_match_brute_force() {
        let doc = fixture();
        let idx = TagIndex::build(&doc);
        let a = idx.fragment_by_name(&doc, "a");
        let c = idx.fragment_by_name(&doc, "c");
        let d = idx.fragment_by_name(&doc, "d");
        // //a/c[./d-as-child]
        let spine = vec![
            SpineLeg {
                edge: TwigEdge::Descendant,
                list: a,
                chains: vec![],
            },
            SpineLeg {
                edge: TwigEdge::Child,
                list: c,
                chains: vec![vec![ChainStep {
                    edge: TwigEdge::Child,
                    list: d,
                }]],
            },
        ];
        let ctx = Context::singleton(doc.root());
        check(&doc, &spine, &ctx, "//a/c[d]");
    }

    #[test]
    fn deep_chain_closure_filters_bottom_up() {
        let doc = fixture();
        let idx = TagIndex::build(&doc);
        let a = idx.fragment_by_name(&doc, "a");
        let c = idx.fragment_by_name(&doc, "c");
        let d = idx.fragment_by_name(&doc, "d");
        // //a[c/d] — two-step chain: only a's with a c-child owning a d.
        let spine = vec![SpineLeg {
            edge: TwigEdge::Descendant,
            list: a,
            chains: vec![vec![
                ChainStep {
                    edge: TwigEdge::Child,
                    list: c,
                },
                ChainStep {
                    edge: TwigEdge::Child,
                    list: d,
                },
            ]],
        }];
        let ctx = Context::singleton(doc.root());
        check(&doc, &spine, &ctx, "//a[c/d]");
    }

    #[test]
    fn empty_fragments_and_empty_context() {
        let doc = fixture();
        let idx = TagIndex::build(&doc);
        let a = idx.fragment_by_name(&doc, "a");
        let spine = vec![
            SpineLeg {
                edge: TwigEdge::Descendant,
                list: a,
                chains: vec![],
            },
            SpineLeg {
                edge: TwigEdge::Descendant,
                list: &[],
                chains: vec![],
            },
        ];
        let (got, _) = twig_match(&doc, &spine, &Context::singleton(doc.root()));
        assert!(got.is_empty());
        let spine_ok = vec![SpineLeg {
            edge: TwigEdge::Descendant,
            list: a,
            chains: vec![],
        }];
        let (got, stats) = twig_match(&doc, &spine_ok, &Context::empty());
        assert!(got.is_empty());
        assert_eq!(stats.context_in, 0);
    }

    #[test]
    fn unsatisfiable_chain_short_circuits_to_empty() {
        let doc = fixture();
        let idx = TagIndex::build(&doc);
        let a = idx.fragment_by_name(&doc, "a");
        let b = idx.fragment_by_name(&doc, "b");
        // //a[x-under-b] where no b has an x: chain closure is empty.
        let spine = vec![SpineLeg {
            edge: TwigEdge::Descendant,
            list: a,
            chains: vec![vec![
                ChainStep {
                    edge: TwigEdge::Child,
                    list: b,
                },
                ChainStep {
                    edge: TwigEdge::Descendant,
                    list: idx.fragment_by_name(&doc, "nonexistent"),
                },
            ]],
        }];
        let (got, _) = twig_match(&doc, &spine, &Context::singleton(doc.root()));
        assert!(got.is_empty());
    }

    #[test]
    fn cursor_probes_at_fragment_boundaries() {
        let doc = fixture();
        let mut m = Matcher {
            doc: &doc,
            post: doc.post_column(),
            stats: StepStats::default(),
            gov: crate::governor::Ticker::ambient(),
        };
        let root = doc.root();
        // Empty list: no descendant, no child, regardless of the probe.
        assert!(!m.has_desc_in(&[], root));
        assert!(!m.has_child_in(&[], root));
        // Single-entry list: hit and miss at both ends.
        let first_a = doc.pres().find(|&v| doc.tag_name(v) == Some("a")).unwrap();
        assert!(m.has_desc_in(&[first_a], root));
        assert!(!m.has_desc_in(&[root], first_a), "seek past list end");
        assert!(m.has_child_in(&[first_a], root));
        assert!(!m.has_child_in(&[root], first_a));
        // Entry equal to the probe node is never its own descendant.
        assert!(!m.has_desc_in(&[root], root));
        // Last node of the document: every probe lands at the list end.
        let last = (doc.len() - 1) as Pre;
        assert!(!m.has_desc_in(&[last], last));
        let seeks_before = m.stats.seeks;
        assert!(m.has_desc_in(&[last], root));
        assert!(m.stats.seeks > seeks_before, "probes count as seeks");
    }

    #[test]
    fn child_edge_from_context_matches_brute_force() {
        let doc = fixture();
        let idx = TagIndex::build(&doc);
        let a = idx.fragment_by_name(&doc, "a");
        let c = idx.fragment_by_name(&doc, "c");
        // ctx/a/c with the context = all a elements (nested a's included).
        let ctx: Context = a.iter().copied().collect();
        let spine = vec![
            SpineLeg {
                edge: TwigEdge::Child,
                list: a,
                chains: vec![],
            },
            SpineLeg {
                edge: TwigEdge::Child,
                list: c,
                chains: vec![],
            },
        ];
        check(&doc, &spine, &ctx, "ctx/a/c");
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn random_docs_and_patterns_match_brute_force() {
        for seed in 0..25u64 {
            let doc = random_doc(seed, 400);
            let idx = TagIndex::build(&doc);
            let tags = ["p", "q", "r", "s"];
            let mut st = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let edge = |r: u64| {
                if r.is_multiple_of(2) {
                    TwigEdge::Descendant
                } else {
                    TwigEdge::Child
                }
            };
            let spine_len = 1 + (xorshift(&mut st) % 3) as usize;
            let mut spine: Vec<SpineLeg<'_>> = Vec::new();
            for _ in 0..spine_len {
                let mut chains = Vec::new();
                for _ in 0..xorshift(&mut st) % 2 {
                    let mut chain = Vec::new();
                    for _ in 0..1 + xorshift(&mut st) % 2 {
                        chain.push(ChainStep {
                            edge: edge(xorshift(&mut st)),
                            list: idx
                                .fragment_by_name(&doc, tags[(xorshift(&mut st) % 4) as usize]),
                        });
                    }
                    chains.push(chain);
                }
                spine.push(SpineLeg {
                    edge: edge(xorshift(&mut st)),
                    list: idx.fragment_by_name(&doc, tags[(xorshift(&mut st) % 4) as usize]),
                    chains,
                });
            }
            // Element-only random context (child edges from non-element
            // context nodes are vacuous either way, but keep it clean).
            let ctx: Context = random_context(&doc, seed ^ 0xBEEF, 12)
                .iter()
                .filter(|&v| doc.kind(v) == NodeKind::Element)
                .collect();
            if ctx.is_empty() {
                continue;
            }
            check(&doc, &spine, &ctx, &format!("seed {seed}"));
        }
    }
}
