//! `ancestor`-axis staircase join (Algorithm 2 plus the §3.3 skip).

use staircase_accel::{Context, Doc, NodeKind, Pre};

use crate::prune::prune_ancestor;
use crate::stats::StepStats;
use crate::Variant;

/// Evaluates `context/ancestor::node()` with the staircase join.
///
/// After pruning (only the deepest node of each ancestor chain remains),
/// the plane is scanned left to right in partitions: the partition *ending*
/// at step `cᵢ` contains the candidates for `cᵢ`'s ancestors; the staircase
/// boundary is `post(cᵢ)` and a node passes with `post > post(cᵢ)`.
///
/// Skipping (§3.3): a node `v` inside `cᵢ`'s partition with
/// `post(v) < post(cᵢ)` precedes `cᵢ`, and so does `v`'s entire subtree —
/// Equation (1) licenses a jump of `post(v) − pre(v)` nodes ("slightly less
/// effective" than the descendant skip because the jump is an
/// underestimate, maximally off by the document height `h`).
/// [`Variant::Skipping`] and [`Variant::EstimationSkipping`] are identical
/// here; the estimate *is* the skip.
pub fn ancestor(doc: &Doc, context: &Context, variant: Variant) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_ancestor(doc, context);
    stats.context_out = pruned.len();
    let mut result = Vec::new();
    ancestor_partitions(doc, pruned.as_slice(), 0, variant, &mut result, &mut stats);
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Evaluates the ancestor partitions induced by `steps` (pruned,
/// staircase-shaped): partition `i` spans `[prev, stepᵢ)` where `prev` is
/// the previous step + 1 (or `start` for the first). Factored out for the
/// parallel join.
pub(crate) fn ancestor_partitions(
    doc: &Doc,
    steps: &[Pre],
    start: Pre,
    variant: Variant,
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
) {
    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;
    // Cooperative stop: tick every visited position, chunk governed
    // mask-kernel ranges, abandon mid-scan on a trip (partial `result`
    // is discarded by the caller).
    let mut gov = crate::governor::Ticker::ambient();

    // Pre-size from the pruned-context height bound (the ancestor-side
    // counterpart of the descendant join's Equation-1 pre-sizing): each
    // step contributes at most `h` ancestors, and every ancestor lies
    // strictly left of the last step.
    if let Some(&last) = steps.last() {
        let bound = (steps.len() * (doc.height() as usize + 1)).min(last as usize);
        result.reserve(bound);
    }

    let mut part_start = start;
    for &c in steps {
        stats.partitions += 1;
        crate::faults::fail_point("core::anc::partition");
        if gov.tick(1) {
            return;
        }
        let bound = post[c as usize];
        match variant {
            Variant::Basic => {
                // Algorithm 2 charges every partition position; the
                // counter is arithmetic, so the containment + kind test
                // runs through the 64-lane mask kernel.
                stats.nodes_scanned += u64::from(c - part_start);
                let mut lo = part_start;
                while lo < c {
                    let hi = if gov.active() {
                        c.min(lo + crate::governor::SCAN_CHUNK)
                    } else {
                        c
                    };
                    crate::mask::select_where(lo, hi, result, |v| {
                        post[v as usize] > bound && kind[v as usize] != attr
                    });
                    if gov.tick(u64::from(hi - lo)) {
                        return;
                    }
                    lo = hi;
                }
            }
            Variant::Skipping | Variant::EstimationSkipping => {
                let mut v = part_start;
                while v < c {
                    stats.nodes_scanned += 1;
                    if gov.tick(1) {
                        return;
                    }
                    if post[v as usize] > bound {
                        if kind[v as usize] != attr {
                            result.push(v);
                        }
                        v += 1;
                    } else {
                        // v (and its whole subtree) precedes c: skip the
                        // guaranteed-descendant block.
                        let jump = post[v as usize].saturating_sub(v).min(c - v - 1);
                        stats.nodes_skipped += u64::from(jump);
                        v += 1 + jump;
                    }
                }
            }
        }
        part_start = c + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure1, random_context, random_doc, reference};
    use staircase_accel::Axis;

    const ALL: [Variant; 3] = [
        Variant::Basic,
        Variant::Skipping,
        Variant::EstimationSkipping,
    ];

    #[test]
    fn figure1_ancestors_of_g() {
        let doc = figure1();
        for variant in ALL {
            let (got, _) = ancestor(&doc, &Context::singleton(6), variant);
            assert_eq!(got.as_slice(), &[0, 4, 5], "{variant:?}"); // a, e, f
        }
    }

    #[test]
    fn figure4_context_produces_shared_ancestors_once() {
        let doc = figure1();
        // ancestor step for (d,e,f,h,i,j): expected a,d? No — ancestor only:
        // ancestors of the context set = {a, e, f, i}.
        let ctx = Context::from_unsorted(vec![3, 4, 5, 7, 8, 9]);
        for variant in ALL {
            let (got, _) = ancestor(&doc, &ctx, variant);
            assert_eq!(got.as_slice(), &[0, 4, 5, 8], "{variant:?}");
        }
    }

    #[test]
    fn variants_agree_with_reference_on_random_docs() {
        for seed in 0..25 {
            let doc = random_doc(seed, 400);
            let ctx = random_context(&doc, seed ^ 0xCAFE, 30);
            let want = reference(&doc, &ctx, Axis::Ancestor);
            for variant in ALL {
                let (got, stats) = ancestor(&doc, &ctx, variant);
                assert_eq!(got.as_slice(), &want[..], "seed {seed}, {variant:?}");
                assert_eq!(stats.result_size, want.len());
            }
        }
    }

    #[test]
    fn results_in_document_order_without_duplicates() {
        for seed in 0..10 {
            let doc = random_doc(seed, 500);
            let ctx = random_context(&doc, seed ^ 0x5150, 60);
            let (got, _) = ancestor(&doc, &ctx, Variant::Skipping);
            assert!(
                got.as_slice().windows(2).all(|w| w[0] < w[1]),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn root_has_no_ancestors() {
        let doc = figure1();
        for variant in ALL {
            let (got, _) = ancestor(&doc, &Context::singleton(0), variant);
            assert!(got.is_empty(), "{variant:?}");
        }
    }

    #[test]
    fn skipping_touches_fewer_nodes_than_basic() {
        let doc = random_doc(3, 2000);
        // Deep contexts: the nodes with maximal level.
        let max_level = doc.pres().map(|p| doc.level(p)).max().unwrap();
        let ctx: Context = doc.pres().filter(|&p| doc.level(p) == max_level).collect();
        let (a, basic) = ancestor(&doc, &ctx, Variant::Basic);
        let (b, skip) = ancestor(&doc, &ctx, Variant::Skipping);
        assert_eq!(a, b);
        assert!(skip.nodes_scanned < basic.nodes_scanned);
        assert!(skip.nodes_skipped > 0);
        assert_eq!(
            skip.nodes_scanned + skip.nodes_skipped,
            basic.nodes_scanned,
            "every basic-scanned node is either scanned or skipped"
        );
    }

    #[test]
    fn empty_context_empty_result() {
        let doc = figure1();
        let (got, stats) = ancestor(&doc, &Context::empty(), Variant::Skipping);
        assert!(got.is_empty());
        assert_eq!(stats.nodes_touched(), 0);
    }

    #[test]
    fn attributes_never_in_result() {
        let doc =
            staircase_accel::Doc::from_xml(r#"<a x="1"><b y="2"><c z="3"/></b></a>"#).unwrap();
        // Context: the <c> element (pre 4).
        for variant in ALL {
            let (got, _) = ancestor(&doc, &Context::singleton(4), variant);
            assert_eq!(got.len(), 2, "{variant:?}"); // a, b
            assert!(got.iter().all(|v| doc.kind(v) == NodeKind::Element));
        }
    }

    #[test]
    fn duplicates_avoided_versus_naive_counts() {
        // Experiment 1's premise: the naive approach produces one copy of a
        // shared ancestor per context node; staircase join produces one
        // total.
        let doc = figure1();
        let ctx = Context::from_unsorted(vec![6, 7]); // g, h share f, e, a
        let naive_total: usize = ctx
            .iter()
            .map(|c| {
                doc.pres()
                    .filter(|&v| Axis::Ancestor.contains(&doc, c, v))
                    .count()
            })
            .sum();
        let (got, _) = ancestor(&doc, &ctx, Variant::Skipping);
        assert_eq!(naive_total, 6);
        assert_eq!(got.len(), 3);
    }
}
