//! `descendant`-axis staircase join (Algorithms 2, 3, and 4).

use staircase_accel::{Context, Doc, NodeKind, Pre};

use crate::prune::prune_descendant;
use crate::stats::StepStats;
use crate::Variant;

/// Evaluates `context/descendant::node()` with the staircase join.
///
/// The context is pruned (covered subtrees removed), then the plane is
/// scanned partition by partition: partition `i` spans the pre ranks
/// `(cᵢ, cᵢ₊₁)`; the staircase boundary inside it is `post(cᵢ)`. The three
/// [`Variant`]s differ only in how much of each partition they touch:
///
/// * [`Variant::Basic`] — scan to the partition's end (Algorithm 2),
/// * [`Variant::Skipping`] — stop at the first node outside the boundary;
///   the rest of the partition is a provably empty Z-region (Algorithm 3),
/// * [`Variant::EstimationSkipping`] — first *copy* the `post(c) − pre(c)`
///   guaranteed descendants without comparisons, then scan at most
///   `h` more nodes (Algorithm 4, Equation 1).
///
/// Results arrive duplicate-free in document order; attribute nodes are
/// filtered out (no axis except `attribute` yields them).
pub fn descendant(doc: &Doc, context: &Context, variant: Variant) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let pruned = prune_descendant(doc, context);
    stats.context_out = pruned.len();
    let mut result = Vec::new();
    descendant_partitions(
        doc,
        pruned.as_slice(),
        doc.len() as Pre,
        variant,
        &mut result,
        &mut stats,
    );
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Like [`descendant`], but with pruning *fused* into the join instead of
/// run as a separate pass over the context table (§3.2: "staircase join is
/// easily adapted to do pruning on-the-fly, thus saving a separate scan
/// over the context table").
///
/// Covered context nodes are recognised while walking the context: any
/// node whose postorder rank does not exceed the current step's boundary
/// lies inside that step's subtree and is skipped. Results and access
/// statistics are identical to the prune-then-join pipeline (asserted by
/// tests); only the extra context scan disappears.
pub fn descendant_fused(doc: &Doc, context: &Context, variant: Variant) -> (Context, StepStats) {
    let mut stats = StepStats {
        context_in: context.len(),
        ..Default::default()
    };
    let slice = context.as_slice();
    let post = doc.post_column();
    let n = doc.len() as Pre;
    let mut result = Vec::new();

    let mut i = 0usize;
    while i < slice.len() {
        let c = slice[i];
        let bound = post[c as usize];
        stats.context_out += 1;
        // On-the-fly pruning: context nodes inside c's subtree have
        // pre > pre(c) and post ≤ post(c); their regions are covered.
        let mut j = i + 1;
        while j < slice.len() && post[slice[j] as usize] <= bound {
            j += 1;
        }
        let part_end = slice.get(j).copied().unwrap_or(n);
        descendant_partitions(doc, &[c], part_end, variant, &mut result, &mut stats);
        i = j;
    }
    stats.result_size = result.len();
    (Context::from_sorted(result), stats)
}

/// Equation-1 pre-sizing: the first `post(c) − pre(c)` nodes after each
/// step are guaranteed descendants, so their sum over a pruned step
/// slice (whose last partition ends at `end`, exclusive) is a tight
/// lower bound on the join's result size — exact up to attribute
/// filtering and the ≤ h scan-phase nodes per partition. Shared by the
/// sequential and the batched descendant joins, and exposed so planners
/// (see [`crate::cost`]) can turn a context *in hand* into an exact
/// window where the statistical estimate would have to guess.
pub fn guaranteed_result_estimate(post: &[u32], steps: &[Pre], end: Pre) -> usize {
    steps
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let part_end = steps.get(i + 1).copied().unwrap_or(end);
            post[c as usize].saturating_sub(c).min(part_end - c - 1) as usize
        })
        .sum()
}

/// Evaluates the partitions induced by `steps` (a pruned, staircase-shaped
/// context slice); the last partition ends at `end` (exclusive). Factored
/// out so the parallel join can hand each worker a chunk of steps.
pub(crate) fn descendant_partitions(
    doc: &Doc,
    steps: &[Pre],
    end: Pre,
    variant: Variant,
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
) {
    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;
    // Governed scans stop cooperatively: every visited position is
    // ticked, long mask-kernel ranges are chunked so a deadline cannot
    // hide behind one huge partition, and a trip abandons the scan
    // mid-flight (the partial `result` is discarded by the caller).
    let mut gov = crate::governor::Ticker::ambient();

    result.reserve(guaranteed_result_estimate(post, steps, end));

    for (i, &c) in steps.iter().enumerate() {
        let part_end = steps.get(i + 1).copied().unwrap_or(end);
        debug_assert!(part_end > c);
        stats.partitions += 1;
        crate::faults::fail_point("core::desc::partition");
        if gov.tick(1) {
            return;
        }
        let bound = post[c as usize];

        match variant {
            Variant::Basic => {
                // Algorithm 2: inspect the entire partition. Every
                // position is charged regardless of the per-node test,
                // so the counter is arithmetic and the filter runs
                // through the 64-lane mask kernel.
                stats.nodes_scanned += u64::from(part_end - c - 1);
                let mut lo = c + 1;
                while lo < part_end {
                    let hi = if gov.active() {
                        part_end.min(lo + crate::governor::SCAN_CHUNK)
                    } else {
                        part_end
                    };
                    crate::mask::select_where(lo, hi, result, |v| {
                        post[v as usize] < bound && kind[v as usize] != attr
                    });
                    if gov.tick(u64::from(hi - lo)) {
                        return;
                    }
                    lo = hi;
                }
            }
            Variant::Skipping => {
                // Algorithm 3: the first node v with post(v) ≥ post(c)
                // follows c, so c and v share no descendants — the rest of
                // the partition is empty (Z-region, Figure 7(b)).
                let mut v = c + 1;
                while v < part_end {
                    stats.nodes_scanned += 1;
                    if gov.tick(1) {
                        return;
                    }
                    if post[v as usize] < bound {
                        if kind[v as usize] != attr {
                            result.push(v);
                        }
                        v += 1;
                    } else {
                        stats.nodes_skipped += u64::from(part_end - v - 1);
                        break;
                    }
                }
            }
            Variant::EstimationSkipping => {
                // Algorithm 4. The first post(c) − pre(c) nodes after c are
                // guaranteed descendants (Equation 1 minus the level term):
                // copy them without postorder comparisons.
                let estimate = bound.min(part_end.saturating_sub(1));
                let mut v = c + 1;
                if v <= estimate {
                    // The copy phase charges every position of the
                    // guaranteed range whether or not it survives the
                    // attribute filter, so the counter is arithmetic
                    // and the filter is a masked select.
                    let copy_end = estimate + 1;
                    stats.nodes_copied += u64::from(copy_end - v);
                    while v < copy_end {
                        let hi = if gov.active() {
                            copy_end.min(v + crate::governor::SCAN_CHUNK)
                        } else {
                            copy_end
                        };
                        crate::mask::select_non_attr(kind, v, hi, result);
                        if gov.tick(u64::from(hi - v)) {
                            return;
                        }
                        v = hi;
                    }
                }
                // Scan phase: at most level(c) ≤ h more descendants.
                while v < part_end {
                    stats.nodes_scanned += 1;
                    if gov.tick(1) {
                        return;
                    }
                    if post[v as usize] < bound {
                        if kind[v as usize] != attr {
                            result.push(v);
                        }
                        v += 1;
                    } else {
                        stats.nodes_skipped += u64::from(part_end - v - 1);
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{figure1, random_context, random_doc, reference};
    use staircase_accel::Axis;

    const ALL: [Variant; 3] = [
        Variant::Basic,
        Variant::Skipping,
        Variant::EstimationSkipping,
    ];

    #[test]
    fn figure1_descendants_of_f() {
        let doc = figure1();
        for variant in ALL {
            let (got, stats) = descendant(&doc, &Context::singleton(5), variant);
            assert_eq!(got.as_slice(), &[6, 7], "{variant:?}"); // g, h
            assert_eq!(stats.result_size, 2);
        }
    }

    #[test]
    fn root_step_yields_everything_else() {
        let doc = figure1();
        for variant in ALL {
            let (got, _) = descendant(&doc, &Context::singleton(0), variant);
            assert_eq!(got.len(), doc.len() - 1, "{variant:?}");
        }
    }

    #[test]
    fn variants_agree_with_reference_on_random_docs() {
        for seed in 0..25 {
            let doc = random_doc(seed, 400);
            let ctx = random_context(&doc, seed ^ 0xBEEF, 30);
            let want = reference(&doc, &ctx, Axis::Descendant);
            for variant in ALL {
                let (got, stats) = descendant(&doc, &ctx, variant);
                assert_eq!(got.as_slice(), &want[..], "seed {seed}, {variant:?}");
                assert_eq!(stats.result_size, want.len());
            }
        }
    }

    #[test]
    fn no_duplicates_and_document_order() {
        for seed in 0..10 {
            let doc = random_doc(seed, 500);
            let ctx = random_context(&doc, seed, 50);
            let (got, _) = descendant(&doc, &ctx, Variant::EstimationSkipping);
            assert!(
                got.as_slice().windows(2).all(|w| w[0] < w[1]),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn skipping_touches_at_most_result_plus_context() {
        // §3.3: for each context node we either hit a result node or a
        // single node that triggers a skip.
        for seed in 0..15 {
            let doc = random_doc(seed, 600);
            let ctx = random_context(&doc, seed ^ 0xF00D, 40);
            let (got, stats) = descendant(&doc, &ctx, Variant::Skipping);
            // Attribute nodes inside subtrees are scanned but filtered from
            // the result, so compare against the unfiltered region size.
            let region = doc
                .pres()
                .filter(|&v| ctx.iter().any(|c| v > c && doc.post(v) < doc.post(c)))
                .count() as u64;
            assert!(
                stats.nodes_touched() <= region + stats.context_out as u64,
                "seed {seed}: touched {} > region {} + context {} (result {})",
                stats.nodes_touched(),
                region,
                stats.context_out,
                got.len(),
            );
        }
    }

    #[test]
    fn estimation_scan_phase_bounded_by_height() {
        // nodes_scanned per partition ≤ h + 1 under estimation skipping.
        for seed in 0..15 {
            let doc = random_doc(seed, 600);
            let ctx = random_context(&doc, seed ^ 0xAAAA, 40);
            let (_, stats) = descendant(&doc, &ctx, Variant::EstimationSkipping);
            let bound = (doc.height() as u64 + 1) * stats.partitions as u64;
            assert!(
                stats.nodes_scanned <= bound,
                "seed {seed}: scanned {} > {} (h={}, partitions={})",
                stats.nodes_scanned,
                bound,
                doc.height(),
                stats.partitions
            );
        }
    }

    #[test]
    fn basic_scans_rest_of_plane() {
        let doc = figure1();
        // Context (b): Algorithm 2 scans from b+1 to the end of the plane.
        let (_, stats) = descendant(&doc, &Context::singleton(1), Variant::Basic);
        assert_eq!(stats.nodes_scanned, (doc.len() - 2) as u64);
        assert_eq!(stats.nodes_skipped, 0);
    }

    #[test]
    fn skipping_skips_rest_of_plane_for_leaf_context() {
        let doc = figure1();
        // Context (c): a leaf early in the document; skipping bails on the
        // first scanned node.
        let (got, stats) = descendant(&doc, &Context::singleton(2), Variant::Skipping);
        assert!(got.is_empty());
        assert_eq!(stats.nodes_scanned, 1);
        assert_eq!(stats.nodes_skipped, (doc.len() - 4) as u64);
    }

    #[test]
    fn attributes_never_in_result() {
        let doc =
            staircase_accel::Doc::from_xml(r#"<a x="1"><b y="2"><c z="3"/></b></a>"#).unwrap();
        for variant in ALL {
            let (got, _) = descendant(&doc, &Context::singleton(0), variant);
            assert!(
                got.iter().all(|v| doc.kind(v) != NodeKind::Attribute),
                "{variant:?}"
            );
            assert_eq!(got.len(), 2); // b, c
        }
    }

    #[test]
    fn empty_context_empty_result() {
        let doc = figure1();
        for variant in ALL {
            let (got, stats) = descendant(&doc, &Context::empty(), variant);
            assert!(got.is_empty());
            assert_eq!(stats.partitions, 0);
            assert_eq!(stats.nodes_touched(), 0);
        }
    }

    #[test]
    fn unpruned_context_same_result_as_pruned() {
        let doc = figure1();
        let unpruned = Context::from_unsorted(vec![4, 5, 6, 8]); // e covers f,g,i
        let pruned = Context::singleton(4);
        for variant in ALL {
            let (a, sa) = descendant(&doc, &unpruned, variant);
            let (b, _) = descendant(&doc, &pruned, variant);
            assert_eq!(a, b, "{variant:?}");
            assert_eq!(sa.context_out, 1);
            assert_eq!(sa.pruned(), 3);
        }
    }

    #[test]
    fn fused_pruning_equals_prune_then_join() {
        for seed in 0..20 {
            let doc = random_doc(seed, 500);
            let ctx = random_context(&doc, seed ^ 0x0F0F, 60);
            for variant in ALL {
                let (a, sa) = descendant(&doc, &ctx, variant);
                let (b, sb) = descendant_fused(&doc, &ctx, variant);
                assert_eq!(a, b, "seed {seed}, {variant:?}");
                assert_eq!(sa.context_out, sb.context_out, "seed {seed}");
                assert_eq!(sa.nodes_scanned, sb.nodes_scanned, "seed {seed}");
                assert_eq!(sa.nodes_copied, sb.nodes_copied, "seed {seed}");
                assert_eq!(sa.partitions, sb.partitions, "seed {seed}");
            }
        }
    }

    #[test]
    fn fused_pruning_counts_pruned_context() {
        let doc = figure1();
        // e (4) covers f (5) and i (8); b (1) is disjoint.
        let ctx = Context::from_unsorted(vec![1, 4, 5, 8]);
        let (_, stats) = descendant_fused(&doc, &ctx, Variant::EstimationSkipping);
        assert_eq!(stats.context_in, 4);
        assert_eq!(stats.context_out, 2);
        assert_eq!(stats.pruned(), 2);
    }

    #[test]
    fn stats_copied_dominates_for_root_query() {
        // (root)/descendant is almost pure copy phase (§4.3's bandwidth
        // experiment relies on this).
        let doc = random_doc(7, 2000);
        let (got, stats) = descendant(&doc, &Context::singleton(0), Variant::EstimationSkipping);
        assert_eq!(stats.nodes_copied, (doc.len() - 1) as u64);
        assert_eq!(stats.nodes_scanned, 0);
        assert!(got.len() < doc.len());
    }
}
