//! Morsel-parallel forms of the multi-context staircase kernels.
//!
//! §3.2's Figure-8 argument — pruned staircase steps own **disjoint
//! pre-range partitions**, so partitions evaluate independently and
//! their results concatenate in document order with no merge sort — is
//! exactly what a morsel-driven executor (Leis et al., SIGMOD 2014)
//! needs: each morsel is a contiguous chunk of the boundary list, a
//! worker from the session's [`WorkerPool`] walks it with the ordinary
//! sequential partition loops, and the coordinator glues the per-worker
//! result vectors back together.
//!
//! Two splitting strategies cover every partition shape:
//!
//! * **By steps** ([`span_chunks`] / [`entry_chunks`]): contiguous runs
//!   of whole partitions, weighted by their pre-range span (plane scans)
//!   or their fragment-entry count (on-list scans) so workers get equal
//!   *work*, not equal step counts. This is the [`crate::parallel`]
//!   engine's split, now driven by the persistent pool.
//! * **Inside one partition** ([`plan_descendant_slices`]): the common
//!   hot case — a root context — has a *single* partition covering the
//!   whole plane, which steps-chunking cannot split. For the descendant
//!   direction the touched interval of a partition is known in closed
//!   form before scanning: descendants of `c` are the contiguous run
//!   `(c, c + |subtree(c)|]`, so the scan touches `(c, m]` where
//!   `m = c + |subtree(c)| + 1` is the provable first miss (the node
//!   whose postorder rank first exceeds `post(c)`). Any sub-range of
//!   that interval can therefore be executed independently — including
//!   the skip bookkeeping, which can only fire in the sub-range
//!   containing `m`.
//!
//! Every morsel reproduces the sequential kernel's per-position
//! behaviour bit for bit, so per-worker [`StepStats`] **sum to exactly
//! the sequential counters** (asserted by the tests below) and results
//! are node- and order-identical. The ancestor direction has no closed
//! touched-interval (its skip is an under-estimating jump chain), so it
//! parallelises by whole partitions only — which is where its work lives
//! anyway: ancestor steps arrive with many boundaries, not one.

use staircase_accel::{Context, Doc, NodeKind, Pre};

use crate::anc::ancestor_partitions;
use crate::batch::{
    ancestor_list_scan, ancestor_scan, descendant_list_scan, descendant_scan, shared_pass, Lane,
    Scratch,
};
use crate::desc::descendant_partitions;
use crate::list::{ancestor_list_partitions, descendant_list_partitions};
use crate::pool::WorkerPool;
use crate::prune::{prune_ancestor_into, prune_descendant_into};
use crate::stats::StepStats;
use crate::{ancestor_many, descendant_many, Variant};
use crate::{ancestor_on_list_many, descendant_on_list_many};

/// Minimum touched-work (nodes or list entries) a morsel must carry for
/// the handoff to a pooled worker to amortize. Batches below twice this
/// stay sequential.
pub(crate) const MIN_MORSEL_WORK: u64 = 2048;

/// How many morsels `work` units of touched-work justify on a pool of
/// `width` executors; `None` means "stay sequential".
pub(crate) fn morsel_count(work: u64, width: usize) -> Option<usize> {
    let by_work = usize::try_from(work / MIN_MORSEL_WORK).unwrap_or(usize::MAX);
    let k = by_work.min(width);
    (k >= 2).then_some(k)
}

/// The parallel form of [`crate::descendant_many`]: identical results
/// and statistics, with single-context batches split into morsels
/// executed on `pool`. Multi-context (merged-boundary) batches keep the
/// sequential shared scan — their sharing *is* the optimisation — and a
/// width-1 pool degenerates to the sequential kernel outright.
pub fn descendant_many_par(
    doc: &Doc,
    contexts: &[&Context],
    variant: Variant,
    pool: &WorkerPool,
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    if pool.width() == 1 {
        return descendant_many(doc, contexts, variant, scratch);
    }
    shared_pass(
        doc,
        contexts,
        scratch,
        prune_descendant_into,
        |doc, lanes, scratch| match lanes {
            [lane] => descendant_lane_par(doc, lane, variant, pool, scratch),
            _ => descendant_scan(doc, lanes, variant),
        },
    )
}

/// The parallel form of [`crate::ancestor_many`]; see
/// [`descendant_many_par`] for the contract.
pub fn ancestor_many_par(
    doc: &Doc,
    contexts: &[&Context],
    variant: Variant,
    pool: &WorkerPool,
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    if pool.width() == 1 {
        return ancestor_many(doc, contexts, variant, scratch);
    }
    shared_pass(
        doc,
        contexts,
        scratch,
        prune_ancestor_into,
        |doc, lanes, scratch| match lanes {
            [lane] => ancestor_lane_par(doc, lane, variant, pool, scratch),
            _ => ancestor_scan(doc, lanes, variant),
        },
    )
}

/// The parallel form of [`crate::descendant_on_list_many`]: the shared
/// tag fragment is split into per-partition entry ranges and executed by
/// the pool; see [`descendant_many_par`] for the contract.
pub fn descendant_on_list_many_par(
    doc: &Doc,
    list: &[Pre],
    contexts: &[&Context],
    pool: &WorkerPool,
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    if pool.width() == 1 {
        return descendant_on_list_many(doc, list, contexts, scratch);
    }
    shared_pass(
        doc,
        contexts,
        scratch,
        prune_descendant_into,
        |doc, lanes, scratch| match lanes {
            [lane] => descendant_list_lane_par(doc, list, lane, pool, scratch),
            _ => descendant_list_scan(doc, list, lanes),
        },
    )
}

/// The parallel form of [`crate::ancestor_on_list_many`]; see
/// [`descendant_many_par`] for the contract.
pub fn ancestor_on_list_many_par(
    doc: &Doc,
    list: &[Pre],
    contexts: &[&Context],
    pool: &WorkerPool,
    scratch: &mut Scratch,
) -> Vec<(Context, StepStats)> {
    if pool.width() == 1 {
        return ancestor_on_list_many(doc, list, contexts, scratch);
    }
    shared_pass(
        doc,
        contexts,
        scratch,
        prune_ancestor_into,
        |doc, lanes, scratch| match lanes {
            [lane] => ancestor_list_lane_par(doc, list, lane, pool, scratch),
            _ => ancestor_list_scan(doc, list, lanes),
        },
    )
}

// ── Descendant: sub-partition slices ────────────────────────────────────

/// One executable sub-range of a descendant partition: positions
/// `[from, to)` of the partition `(c, part_end)` whose staircase
/// boundary is `bound` and whose Equation-1 copy phase ends at
/// `copy_end` (inclusive; `copy_end ≤ c` means no copy phase).
struct DescSlice {
    bound: u32,
    copy_end: Pre,
    part_end: Pre,
    from: Pre,
    to: Pre,
}

impl DescSlice {
    fn len(&self) -> u64 {
        u64::from(self.to - self.from)
    }
}

/// The touched intervals of every partition, in plane order, plus their
/// total length. For the skipping variants the interval ends at the
/// provable first miss `m = c + |subtree(c)| + 1` (capped by the
/// partition); [`Variant::Basic`] touches the whole partition.
fn plan_descendant_slices(
    doc: &Doc,
    steps: &[Pre],
    end: Pre,
    variant: Variant,
) -> (Vec<DescSlice>, u64) {
    let post = doc.post_column();
    let mut slices = Vec::with_capacity(steps.len());
    let mut work = 0u64;
    for (i, &c) in steps.iter().enumerate() {
        let part_end = steps.get(i + 1).copied().unwrap_or(end);
        let bound = post[c as usize];
        let (copy_end, to) = match variant {
            Variant::Basic => (c, part_end),
            Variant::Skipping => {
                let miss = c + 1 + doc.subtree_size(c);
                (c, miss.saturating_add(1).min(part_end))
            }
            Variant::EstimationSkipping => {
                let miss = c + 1 + doc.subtree_size(c);
                (
                    bound.min(part_end - 1),
                    miss.saturating_add(1).min(part_end),
                )
            }
        };
        let from = c + 1;
        let to = to.max(from);
        work += u64::from(to - from);
        slices.push(DescSlice {
            bound,
            copy_end,
            part_end,
            from,
            to,
        });
    }
    (slices, work)
}

/// Splits `slices` (total length `work`) into `k` morsels of roughly
/// equal touched-work, cutting inside a slice where necessary.
fn split_desc_slices(slices: Vec<DescSlice>, work: u64, k: usize) -> Vec<Vec<DescSlice>> {
    let target = work.div_ceil(k as u64).max(1);
    let mut morsels: Vec<Vec<DescSlice>> = Vec::with_capacity(k);
    let mut cur: Vec<DescSlice> = Vec::new();
    let mut cur_work = 0u64;
    for mut s in slices {
        while cur_work + s.len() > target && morsels.len() + 1 < k {
            let room = target - cur_work;
            if room > 0 {
                let cut = s.from + room as Pre;
                cur.push(DescSlice {
                    bound: s.bound,
                    copy_end: s.copy_end,
                    part_end: s.part_end,
                    from: s.from,
                    to: cut,
                });
                s.from = cut;
            }
            morsels.push(std::mem::take(&mut cur));
            cur_work = 0;
        }
        cur_work += s.len();
        if s.len() > 0 {
            cur.push(s);
        }
    }
    if !cur.is_empty() || morsels.is_empty() {
        morsels.push(cur);
    }
    morsels
}

/// Executes one morsel of descendant slices with exactly the sequential
/// partition loop's per-position behaviour (copy / scan / skip-on-miss).
fn exec_desc_morsel(
    doc: &Doc,
    slices: &[DescSlice],
    variant: Variant,
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
) {
    let post = doc.post_column();
    let kind = doc.kind_column();
    let attr = NodeKind::Attribute as u8;
    let skip_on_miss = variant != Variant::Basic;
    // Workers inherit the submitting lane's budget (the pool installs it
    // ambiently); a trip abandons the morsel mid-slice.
    let mut gov = crate::governor::Ticker::ambient();
    for s in slices {
        crate::faults::fail_point("core::morsel::exec");
        let mut v = s.from;
        // The slice's copy prefix charges every position, so the
        // attribute filter runs through the 64-lane mask kernel; the
        // data-dependent scan suffix below stays scalar.
        if v <= s.copy_end {
            let copy_to = s.to.min(s.copy_end + 1);
            stats.nodes_copied += u64::from(copy_to - v);
            while v < copy_to {
                let hi = if gov.active() {
                    copy_to.min(v + crate::governor::SCAN_CHUNK)
                } else {
                    copy_to
                };
                crate::mask::select_non_attr(kind, v, hi, result);
                if gov.tick(u64::from(hi - v)) {
                    return;
                }
                v = hi;
            }
        }
        while v < s.to {
            stats.nodes_scanned += 1;
            if gov.tick(1) {
                return;
            }
            if post[v as usize] < s.bound {
                if kind[v as usize] != attr {
                    result.push(v);
                }
            } else if skip_on_miss {
                // The provable first miss: only the slice containing
                // it ever reaches here, so the Z-region accounting
                // lands exactly once per partition.
                stats.nodes_skipped += u64::from(s.part_end - v - 1);
                break;
            }
            v += 1;
        }
    }
}

/// Runs a single descendant lane through pool-executed morsels (or the
/// sequential loop when the work does not amortize the handoff).
fn descendant_lane_par(
    doc: &Doc,
    lane: &mut Lane,
    variant: Variant,
    pool: &WorkerPool,
    scratch: &mut Scratch,
) {
    let n = doc.len() as Pre;
    let (slices, work) = plan_descendant_slices(doc, &lane.steps, n, variant);
    let Some(k) = morsel_count(work, pool.width()) else {
        return descendant_partitions(
            doc,
            &lane.steps,
            n,
            variant,
            &mut lane.result,
            &mut lane.stats,
        );
    };
    lane.stats.partitions += lane.steps.len();
    let morsels = split_desc_slices(slices, work, k);
    let buffers: Vec<Vec<Pre>> = morsels.iter().map(|_| scratch.take()).collect();
    let outs = pool.run(
        morsels
            .into_iter()
            .zip(buffers)
            .map(|(m, mut buf)| {
                move || {
                    let mut st = StepStats::default();
                    buf.reserve(m.iter().map(|s| s.len() as usize).sum());
                    exec_desc_morsel(doc, &m, variant, &mut buf, &mut st);
                    (buf, st)
                }
            })
            .collect(),
    );
    collect_morsels(outs, &mut lane.result, &mut lane.stats, scratch);
}

// ── Descendant on a list: per-partition entry ranges ────────────────────

/// One executable entry range `[j_from, j_to)` of a fragment-join
/// partition whose staircase boundary is `bound` and whose pre-range
/// ends at `part_end`.
struct ListSlice {
    bound: u32,
    part_end: Pre,
    j_from: usize,
    j_to: usize,
}

/// The touched entry ranges of every partition over `list`: within a
/// partition the fragment entries below the provable first miss are the
/// hits (the subtree run is a contiguous pre-range, and the list is
/// pre-sorted), plus the miss entry itself.
fn plan_descendant_list_slices(
    doc: &Doc,
    list: &[Pre],
    steps: &[Pre],
    end: Pre,
) -> (Vec<ListSlice>, u64) {
    let post = doc.post_column();
    let mut slices = Vec::with_capacity(steps.len());
    let mut work = 0u64;
    let mut j = 0usize;
    for (i, &c) in steps.iter().enumerate() {
        let part_end = steps.get(i + 1).copied().unwrap_or(end);
        let bound = post[c as usize];
        let j_from = j + list[j..].partition_point(|&p| p <= c);
        let in_part = list[j_from..].partition_point(|&p| p < part_end);
        let miss = c + 1 + doc.subtree_size(c);
        let hits = list[j_from..j_from + in_part].partition_point(|&p| p < miss);
        let j_to = j_from + if hits < in_part { hits + 1 } else { in_part };
        work += (j_to - j_from) as u64;
        slices.push(ListSlice {
            bound,
            part_end,
            j_from,
            j_to,
        });
        j = j_from + in_part;
    }
    (slices, work)
}

/// Splits list slices into `k` morsels of roughly equal entry counts.
fn split_list_slices(slices: Vec<ListSlice>, work: u64, k: usize) -> Vec<Vec<ListSlice>> {
    let target = (work.div_ceil(k as u64)).max(1) as usize;
    let mut morsels: Vec<Vec<ListSlice>> = Vec::with_capacity(k);
    let mut cur: Vec<ListSlice> = Vec::new();
    let mut cur_work = 0usize;
    for mut s in slices {
        while cur_work + (s.j_to - s.j_from) > target && morsels.len() + 1 < k {
            let room = target - cur_work;
            if room > 0 {
                let cut = s.j_from + room;
                cur.push(ListSlice {
                    bound: s.bound,
                    part_end: s.part_end,
                    j_from: s.j_from,
                    j_to: cut,
                });
                s.j_from = cut;
            }
            morsels.push(std::mem::take(&mut cur));
            cur_work = 0;
        }
        cur_work += s.j_to - s.j_from;
        if s.j_to > s.j_from {
            cur.push(s);
        }
    }
    if !cur.is_empty() || morsels.is_empty() {
        morsels.push(cur);
    }
    morsels
}

/// Executes one morsel of fragment-join entry ranges, mirroring the
/// sequential on-list partition loop.
fn exec_list_morsel(
    doc: &Doc,
    list: &[Pre],
    slices: &[ListSlice],
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
) {
    let post = doc.post_column();
    let mut gov = crate::governor::Ticker::ambient();
    for s in slices {
        crate::faults::fail_point("core::morsel::exec");
        for j in s.j_from..s.j_to {
            let p = list[j];
            stats.nodes_scanned += 1;
            if gov.tick(1) {
                return;
            }
            if post[p as usize] < s.bound {
                result.push(p);
            } else {
                // Z-region: the rest of the partition's entries are
                // provably not descendants; only the range containing the
                // miss reaches here.
                let rest = list[j..]
                    .partition_point(|&q| q < s.part_end)
                    .saturating_sub(1);
                stats.nodes_skipped += rest as u64;
                break;
            }
        }
    }
}

/// Runs a single fragment-join lane through pool-executed entry ranges.
fn descendant_list_lane_par(
    doc: &Doc,
    list: &[Pre],
    lane: &mut Lane,
    pool: &WorkerPool,
    scratch: &mut Scratch,
) {
    let n = doc.len() as Pre;
    let (slices, work) = plan_descendant_list_slices(doc, list, &lane.steps, n);
    let Some(k) = morsel_count(work, pool.width()) else {
        return descendant_list_partitions(
            doc,
            list,
            &lane.steps,
            n,
            &mut lane.result,
            &mut lane.stats,
        );
    };
    lane.stats.partitions += lane.steps.len();
    let morsels = split_list_slices(slices, work, k);
    let buffers: Vec<Vec<Pre>> = morsels.iter().map(|_| scratch.take()).collect();
    let outs = pool.run(
        morsels
            .into_iter()
            .zip(buffers)
            .map(|(m, mut buf)| {
                move || {
                    let mut st = StepStats::default();
                    exec_list_morsel(doc, list, &m, &mut buf, &mut st);
                    (buf, st)
                }
            })
            .collect(),
    );
    collect_morsels(outs, &mut lane.result, &mut lane.stats, scratch);
}

// ── Ancestor: whole-partition chunks ────────────────────────────────────

/// Splits `steps` into at most `k` contiguous chunks of roughly equal
/// pre-range *span* (partition `i` spans `[prevᵢ, stepᵢ)`), so workers
/// inherit equal scan ranges rather than equal step counts.
fn span_chunks(steps: &[Pre], k: usize) -> Vec<(usize, usize)> {
    let total = u64::from(steps.last().copied().unwrap_or(0));
    let target = total.div_ceil(k as u64).max(1);
    let mut chunks = Vec::with_capacity(k);
    let mut lo = 0usize;
    let mut span_start = 0u64;
    for (i, &c) in steps.iter().enumerate() {
        let span = u64::from(c) - span_start;
        let last = i + 1 == steps.len();
        if last || (span >= target && chunks.len() + 1 < k) {
            chunks.push((lo, i + 1));
            lo = i + 1;
            span_start = u64::from(c);
        }
    }
    chunks
}

/// Splits `steps` into at most `k` contiguous chunks carrying roughly
/// equal numbers of `list` entries (the on-list ancestor join's work
/// unit).
fn entry_chunks(list: &[Pre], steps: &[Pre], k: usize) -> Vec<(usize, usize)> {
    let total = list.len() as u64;
    let target = total.div_ceil(k as u64).max(1);
    let mut chunks = Vec::with_capacity(k);
    let mut lo = 0usize;
    let mut seen_start = 0u64;
    for (i, &c) in steps.iter().enumerate() {
        let seen = list.partition_point(|&p| p < c) as u64 - seen_start;
        let last = i + 1 == steps.len();
        if last || (seen >= target && chunks.len() + 1 < k) {
            chunks.push((lo, i + 1));
            lo = i + 1;
            seen_start += seen;
        }
    }
    chunks
}

/// Runs a single ancestor lane as whole-partition chunks on the pool.
fn ancestor_lane_par(
    doc: &Doc,
    lane: &mut Lane,
    variant: Variant,
    pool: &WorkerPool,
    scratch: &mut Scratch,
) {
    let steps = &lane.steps;
    let span = u64::from(steps.last().copied().unwrap_or(0));
    let k = morsel_count(span, pool.width())
        .map(|k| k.min(steps.len()))
        .filter(|&k| k >= 2);
    let Some(k) = k else {
        return ancestor_partitions(doc, steps, 0, variant, &mut lane.result, &mut lane.stats);
    };
    let chunks = span_chunks(steps, k);
    let buffers: Vec<Vec<Pre>> = chunks.iter().map(|_| scratch.take()).collect();
    let outs = pool.run(
        chunks
            .into_iter()
            .zip(buffers)
            .map(|((lo, hi), mut buf)| {
                let chunk = &steps[lo..hi];
                let start = if lo == 0 { 0 } else { steps[lo - 1] + 1 };
                move || {
                    let mut st = StepStats::default();
                    ancestor_partitions(doc, chunk, start, variant, &mut buf, &mut st);
                    (buf, st)
                }
            })
            .collect(),
    );
    for (buf, st) in outs {
        lane.result.extend_from_slice(&buf);
        scratch.put(buf);
        lane.stats.nodes_scanned += st.nodes_scanned;
        lane.stats.nodes_copied += st.nodes_copied;
        lane.stats.nodes_skipped += st.nodes_skipped;
        lane.stats.partitions += st.partitions;
    }
}

/// Runs a single on-list ancestor lane as whole-partition chunks.
fn ancestor_list_lane_par(
    doc: &Doc,
    list: &[Pre],
    lane: &mut Lane,
    pool: &WorkerPool,
    scratch: &mut Scratch,
) {
    let steps = &lane.steps;
    let below_last = steps
        .last()
        .map(|&c| list.partition_point(|&p| p < c))
        .unwrap_or(0) as u64;
    let k = morsel_count(below_last, pool.width())
        .map(|k| k.min(steps.len()))
        .filter(|&k| k >= 2);
    let Some(k) = k else {
        return ancestor_list_partitions(doc, list, steps, 0, &mut lane.result, &mut lane.stats);
    };
    let chunks = entry_chunks(list, steps, k);
    let buffers: Vec<Vec<Pre>> = chunks.iter().map(|_| scratch.take()).collect();
    let outs = pool.run(
        chunks
            .into_iter()
            .zip(buffers)
            .map(|((lo, hi), mut buf)| {
                let chunk = &steps[lo..hi];
                let start = if lo == 0 { 0 } else { steps[lo - 1] + 1 };
                move || {
                    let mut st = StepStats::default();
                    ancestor_list_partitions(doc, list, chunk, start, &mut buf, &mut st);
                    (buf, st)
                }
            })
            .collect(),
    );
    for (buf, st) in outs {
        lane.result.extend_from_slice(&buf);
        scratch.put(buf);
        lane.stats.nodes_scanned += st.nodes_scanned;
        lane.stats.nodes_copied += st.nodes_copied;
        lane.stats.nodes_skipped += st.nodes_skipped;
        lane.stats.partitions += st.partitions;
    }
}

/// Concatenates morsel outputs in plane order into the lane, summing the
/// per-worker access counters (partition counts are the coordinator's
/// job — a split partition must not count twice).
fn collect_morsels(
    outs: Vec<(Vec<Pre>, StepStats)>,
    result: &mut Vec<Pre>,
    stats: &mut StepStats,
    scratch: &mut Scratch,
) {
    result.reserve(outs.iter().map(|(b, _)| b.len()).sum());
    for (buf, st) in outs {
        result.extend_from_slice(&buf);
        scratch.put(buf);
        stats.nodes_scanned += st.nodes_scanned;
        stats.nodes_copied += st.nodes_copied;
        stats.nodes_skipped += st.nodes_skipped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_context, random_doc};
    use crate::TagIndex;

    const ALL: [Variant; 3] = [
        Variant::Basic,
        Variant::Skipping,
        Variant::EstimationSkipping,
    ];

    fn assert_same(label: &str, par: &[(Context, StepStats)], seq: &[(Context, StepStats)]) {
        assert_eq!(par.len(), seq.len(), "{label}");
        for (i, ((pc, ps), (sc, ss))) in par.iter().zip(seq).enumerate() {
            assert_eq!(pc, sc, "{label}: query {i} results differ");
            assert_eq!(ps, ss, "{label}: query {i} stats differ");
        }
    }

    #[test]
    fn parallel_plane_joins_match_sequential_exactly() {
        for width in [2, 4] {
            let pool = WorkerPool::new(width);
            for seed in 0..8 {
                // Big enough that the morsel gate opens.
                let doc = random_doc(seed, 9000);
                let root = Context::singleton(doc.root());
                let ctx = random_context(&doc, seed ^ 0xD15C, 40);
                for variant in ALL {
                    for case in [&root, &ctx] {
                        let refs: Vec<&Context> = vec![case];
                        let mut s1 = Scratch::new();
                        let mut s2 = Scratch::new();
                        let par = descendant_many_par(&doc, &refs, variant, &pool, &mut s1);
                        let seq = descendant_many(&doc, &refs, variant, &mut s2);
                        assert_same(
                            &format!("desc seed {seed} width {width} {variant:?}"),
                            &par,
                            &seq,
                        );
                        let par = ancestor_many_par(&doc, &refs, variant, &pool, &mut s1);
                        let seq = ancestor_many(&doc, &refs, variant, &mut s2);
                        assert_same(
                            &format!("anc seed {seed} width {width} {variant:?}"),
                            &par,
                            &seq,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_list_joins_match_sequential_exactly() {
        let pool = WorkerPool::new(4);
        for seed in 0..8 {
            let doc = random_doc(seed, 9000);
            let idx = TagIndex::build(&doc);
            let root = Context::singleton(doc.root());
            let ctx = random_context(&doc, seed ^ 0x11F7, 40);
            for tag in ["p", "q"] {
                let list = idx.fragment_by_name(&doc, tag);
                for case in [&root, &ctx] {
                    let refs: Vec<&Context> = vec![case];
                    let mut s1 = Scratch::new();
                    let mut s2 = Scratch::new();
                    let par = descendant_on_list_many_par(&doc, list, &refs, &pool, &mut s1);
                    let seq = descendant_on_list_many(&doc, list, &refs, &mut s2);
                    assert_same(&format!("desc-list {tag} seed {seed}"), &par, &seq);
                    let par = ancestor_on_list_many_par(&doc, list, &refs, &pool, &mut s1);
                    let seq = ancestor_on_list_many(&doc, list, &refs, &mut s2);
                    assert_same(&format!("anc-list {tag} seed {seed}"), &par, &seq);
                }
            }
        }
    }

    #[test]
    fn multi_context_batches_keep_the_shared_scan() {
        // Several distinct contexts: the parallel entry points fall back
        // to the merged sequential scan — same results, same stats.
        let pool = WorkerPool::new(4);
        let doc = random_doc(3, 3000);
        let ctxs: Vec<Context> = (0..5)
            .map(|i| random_context(&doc, 0xBA7C4 ^ i, 20))
            .collect();
        let refs: Vec<&Context> = ctxs.iter().collect();
        let mut s1 = Scratch::new();
        let mut s2 = Scratch::new();
        for variant in ALL {
            let par = descendant_many_par(&doc, &refs, variant, &pool, &mut s1);
            let seq = descendant_many(&doc, &refs, variant, &mut s2);
            assert_same(&format!("multi {variant:?}"), &par, &seq);
        }
    }

    #[test]
    fn single_partition_splits_across_workers() {
        // A root context is one partition; the closed-form touched
        // interval lets the morsel planner split inside it.
        let doc = random_doc(11, 12000);
        let root = Context::singleton(doc.root());
        let refs: Vec<&Context> = vec![&root];
        let pool = WorkerPool::new(4);
        let mut scratch = Scratch::new();
        let (slices, work) = {
            let pruned = crate::prune_descendant(&doc, &root);
            plan_descendant_slices(
                &doc,
                pruned.as_slice(),
                doc.len() as Pre,
                Variant::EstimationSkipping,
            )
        };
        assert_eq!(slices.len(), 1, "root context prunes to one partition");
        assert!(morsel_count(work, pool.width()).unwrap_or(1) >= 2);
        let par = descendant_many_par(
            &doc,
            &refs,
            Variant::EstimationSkipping,
            &pool,
            &mut scratch,
        );
        let (seq, seq_stats) = crate::descendant(&doc, &root, Variant::EstimationSkipping);
        assert_eq!(par[0].0, seq);
        assert_eq!(par[0].1.nodes_touched(), seq_stats.nodes_touched());
    }

    #[test]
    fn tiny_batches_stay_sequential() {
        let pool = WorkerPool::new(4);
        let doc = random_doc(1, 200); // far below the morsel gate
        let ctx = Context::singleton(doc.root());
        let refs: Vec<&Context> = vec![&ctx];
        let mut s1 = Scratch::new();
        let mut s2 = Scratch::new();
        let par = descendant_many_par(&doc, &refs, Variant::Skipping, &pool, &mut s1);
        let seq = descendant_many(&doc, &refs, Variant::Skipping, &mut s2);
        assert_same("tiny", &par, &seq);
    }

    #[test]
    fn span_chunks_cover_all_steps() {
        let steps: Vec<Pre> = vec![5, 6, 7, 1000, 1001, 5000, 9000];
        for k in [2, 3, 4] {
            let chunks = span_chunks(&steps, k);
            assert!(chunks.len() <= k);
            assert_eq!(chunks.first().unwrap().0, 0);
            assert_eq!(chunks.last().unwrap().1, steps.len());
            assert!(chunks.windows(2).all(|w| w[0].1 == w[1].0));
            assert!(chunks.iter().all(|&(lo, hi)| lo < hi));
        }
    }

    #[test]
    fn empty_contexts_short_circuit() {
        let pool = WorkerPool::new(4);
        let doc = random_doc(2, 5000);
        let empty = Context::empty();
        let refs: Vec<&Context> = vec![&empty];
        let mut scratch = Scratch::new();
        let par = descendant_many_par(&doc, &refs, Variant::Basic, &pool, &mut scratch);
        assert!(par[0].0.is_empty());
        let par = ancestor_many_par(&doc, &refs, Variant::Basic, &pool, &mut scratch);
        assert!(par[0].0.is_empty());
    }
}
