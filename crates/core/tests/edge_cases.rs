//! Edge-case stress tests for the staircase join: degenerate tree shapes
//! (deep chains, wide fan-outs, singletons) that exercise the boundary
//! arithmetic of pruning, partitioning and skipping.

use staircase_accel::{Axis, Context, Doc, EncodingBuilder, Pre};
use staircase_core::{
    ancestor, ancestor_parallel, descendant, descendant_parallel, following, preceding, prune,
    Variant,
};

const ALL: [Variant; 3] = [
    Variant::Basic,
    Variant::Skipping,
    Variant::EstimationSkipping,
];

/// A path graph: root → c1 → c2 → … → c(n-1).
fn chain(n: usize) -> Doc {
    let mut b = EncodingBuilder::new();
    for _ in 0..n {
        b.open_element("c");
    }
    for _ in 0..n {
        b.close_element();
    }
    b.finish()
}

/// A star: one root with n leaf children.
fn star(n: usize) -> Doc {
    let mut b = EncodingBuilder::new();
    b.open_element("r");
    for _ in 0..n {
        b.open_element("leaf");
        b.close_element();
    }
    b.close_element();
    b.finish()
}

#[test]
fn deep_chain_descendants() {
    let n = 20_000;
    let doc = chain(n);
    assert_eq!(doc.height() as usize, n - 1);
    for variant in ALL {
        let (r, _) = descendant(&doc, &Context::singleton(0), variant);
        assert_eq!(r.len(), n - 1, "{variant:?}");
        // Midpoint node: exactly half below.
        let mid = (n / 2) as Pre;
        let (r, _) = descendant(&doc, &Context::singleton(mid), variant);
        assert_eq!(r.len(), n - 1 - mid as usize, "{variant:?}");
    }
}

#[test]
fn deep_chain_ancestors() {
    let n = 20_000;
    let doc = chain(n);
    let last = (n - 1) as Pre;
    for variant in ALL {
        let (r, _) = ancestor(&doc, &Context::singleton(last), variant);
        assert_eq!(r.len(), n - 1, "{variant:?}");
    }
    // The whole chain as context prunes to the deepest node.
    let ctx: Context = doc.pres().collect();
    let pruned = prune(&doc, &ctx, Axis::Ancestor);
    assert_eq!(pruned.as_slice(), &[last]);
}

#[test]
fn deep_chain_has_no_following_or_preceding() {
    let doc = chain(5_000);
    for v in [0 as Pre, 2_500, 4_999] {
        let (f, _) = following(&doc, &Context::singleton(v));
        assert!(f.is_empty());
        let (p, _) = preceding(&doc, &Context::singleton(v));
        assert!(p.is_empty());
    }
}

#[test]
fn wide_star_descendants_and_siblings() {
    let n = 100_000;
    let doc = star(n);
    assert_eq!(doc.height(), 1);
    for variant in ALL {
        let (r, stats) = descendant(&doc, &Context::singleton(0), variant);
        assert_eq!(r.len(), n, "{variant:?}");
        assert_eq!(stats.partitions, 1);
    }
    // Every leaf's following = all later leaves.
    let (f, _) = following(&doc, &Context::singleton(1));
    assert_eq!(f.len(), n - 1);
    let (p, _) = preceding(&doc, &Context::singleton(n as Pre));
    assert_eq!(p.len(), n - 1);
}

#[test]
fn wide_star_full_context_prunes_to_nothing_shared() {
    let n = 10_000;
    let doc = star(n);
    // All leaves as context: nothing prunes (pairwise disjoint), and the
    // descendant result is empty.
    let leaves: Context = (1..=n as Pre).collect();
    let pruned = prune(&doc, &leaves, Axis::Descendant);
    assert_eq!(pruned.len(), n);
    for variant in ALL {
        let (r, stats) = descendant(&doc, &leaves, variant);
        assert!(r.is_empty(), "{variant:?}");
        assert_eq!(stats.partitions, n);
    }
    // Ancestor from all leaves: just the root, found once.
    let (r, _) = ancestor(&doc, &leaves, Variant::Skipping);
    assert_eq!(r.as_slice(), &[0]);
}

#[test]
fn single_node_document() {
    let doc = chain(1);
    let ctx = Context::singleton(0);
    for variant in ALL {
        assert!(descendant(&doc, &ctx, variant).0.is_empty());
        assert!(ancestor(&doc, &ctx, variant).0.is_empty());
    }
    assert!(following(&doc, &ctx).0.is_empty());
    assert!(preceding(&doc, &ctx).0.is_empty());
}

#[test]
fn parallel_on_degenerate_shapes() {
    let chain_doc = chain(2_000);
    let star_doc = star(2_000);
    for doc in [&chain_doc, &star_doc] {
        let ctx: Context = doc.pres().filter(|v| v % 7 == 0).collect();
        let (s, _) = descendant(doc, &ctx, Variant::EstimationSkipping);
        for threads in [1, 3, 8] {
            let (p, _) = descendant_parallel(doc, &ctx, Variant::EstimationSkipping, threads);
            assert_eq!(s, p);
        }
        let (s, _) = ancestor(doc, &ctx, Variant::Skipping);
        for threads in [1, 3, 8] {
            let (p, _) = ancestor_parallel(doc, &ctx, Variant::Skipping, threads);
            assert_eq!(s, p);
        }
    }
}

#[test]
fn comb_tree_alternating_regions() {
    // A comb: spine of depth d, each spine node with one leaf tooth.
    let d = 1_000;
    let mut b = EncodingBuilder::new();
    for _ in 0..d {
        b.open_element("spine");
        b.open_element("tooth");
        b.close_element();
    }
    for _ in 0..d {
        b.close_element();
    }
    let doc = b.finish();
    // Teeth sit at pre = 1, 3, 5, … (right after their spine node).
    let teeth: Context = (0..d as Pre).map(|i| i * 2 + 1).collect();
    // Ancestors of all teeth = all spine nodes.
    let (anc, _) = ancestor(&doc, &teeth, Variant::Skipping);
    assert_eq!(anc.len(), d);
    assert!(anc.iter().all(|v| v % 2 == 0));
    // Preceding of the last tooth: every earlier tooth (spines are
    // ancestors, not preceding).
    let last_tooth = Context::singleton((d as Pre) * 2 - 1);
    let (prec, _) = preceding(&doc, &last_tooth);
    assert_eq!(prec.len(), d - 1);
    assert!(prec.iter().all(|v| v % 2 == 1));
}

#[test]
fn context_equal_to_whole_document() {
    let doc = star(5_000);
    let ctx: Context = doc.pres().collect();
    for variant in ALL {
        let (d, _) = descendant(&doc, &ctx, variant);
        assert_eq!(d.len(), 5_000, "{variant:?}"); // everything below root
        let (a, _) = ancestor(&doc, &ctx, variant);
        assert_eq!(a.as_slice(), &[0], "{variant:?}");
    }
}
