//! Property tests: on arbitrary documents and contexts, every staircase
//! join variant must agree with the brute-force axis semantics and respect
//! the paper's access-count guarantees.

use proptest::prelude::*;
use staircase_accel::{Axis, Context, Doc, EncodingBuilder, Pre};
use staircase_core::{
    ancestor, ancestor_parallel, descendant, descendant_on_list, descendant_parallel, following,
    preceding, prune, try_axis_step, TagIndex, Variant,
};

fn arb_doc() -> impl Strategy<Value = Doc> {
    (proptest::collection::vec(0u8..4, 1..300)).prop_map(|ops| {
        let tags = ["p", "q", "r"];
        let mut b = EncodingBuilder::new();
        b.open_element("root");
        let mut depth = 1;
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                0 | 3 => {
                    b.open_element(tags[i % tags.len()]);
                    depth += 1;
                }
                1 if depth > 1 => {
                    b.close_element();
                    depth -= 1;
                }
                _ => {
                    b.comment("leaf");
                }
            }
        }
        while depth > 0 {
            b.close_element();
            depth -= 1;
        }
        b.finish()
    })
}

fn arb_doc_and_context() -> impl Strategy<Value = (Doc, Context)> {
    arb_doc().prop_flat_map(|doc| {
        let n = doc.len() as u32;
        let ctx = proptest::collection::vec(0..n, 0..24).prop_map(Context::from_unsorted);
        (Just(doc), ctx)
    })
}

fn reference(doc: &Doc, ctx: &Context, axis: Axis) -> Vec<Pre> {
    doc.pres()
        .filter(|&v| ctx.iter().any(|c| axis.contains(doc, c, v)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_variants_match_reference((doc, ctx) in arb_doc_and_context()) {
        for axis in Axis::PARTITIONING {
            let want = reference(&doc, &ctx, axis);
            for variant in [Variant::Basic, Variant::Skipping, Variant::EstimationSkipping] {
                let (got, stats) = try_axis_step(&doc, &ctx, axis, variant).unwrap();
                prop_assert_eq!(got.as_slice(), &want[..], "{}/{:?}", axis, variant);
                prop_assert_eq!(stats.result_size, want.len());
            }
        }
    }

    #[test]
    fn results_sorted_and_unique((doc, ctx) in arb_doc_and_context()) {
        for axis in Axis::PARTITIONING {
            let (got, _) = try_axis_step(&doc, &ctx, axis, Variant::default()).unwrap();
            prop_assert!(got.as_slice().windows(2).all(|w| w[0] < w[1]), "{}", axis);
        }
    }

    #[test]
    fn pruning_never_changes_results((doc, ctx) in arb_doc_and_context()) {
        for axis in Axis::PARTITIONING {
            let pruned = prune(&doc, &ctx, axis);
            prop_assert!(pruned.len() <= ctx.len());
            prop_assert_eq!(
                reference(&doc, &ctx, axis),
                reference(&doc, &pruned, axis),
                "{}", axis
            );
        }
    }

    /// §3.3: with skipping, descendant touches ≤ |region| + |context| nodes.
    #[test]
    fn skipping_access_bound((doc, ctx) in arb_doc_and_context()) {
        let (_, stats) = descendant(&doc, &ctx, Variant::Skipping);
        let region = doc
            .pres()
            .filter(|&v| ctx.iter().any(|c| v > c && doc.post(v) < doc.post(c)))
            .count() as u64;
        prop_assert!(stats.nodes_touched() <= region + stats.context_out as u64);
    }

    /// Estimation skipping performs at most (h+1) comparisons per partition.
    #[test]
    fn estimation_comparison_bound((doc, ctx) in arb_doc_and_context()) {
        let (_, stats) = descendant(&doc, &ctx, Variant::EstimationSkipping);
        prop_assert!(
            stats.nodes_scanned <= (doc.height() as u64 + 1) * stats.partitions as u64
        );
    }

    /// The closure property: feeding a step result back in as context is
    /// always legal (sorted, unique, in-bounds).
    #[test]
    fn results_compose((doc, ctx) in arb_doc_and_context()) {
        let (step1, _) = descendant(&doc, &ctx, Variant::default());
        let (step2, _) = ancestor(&doc, &step1, Variant::default());
        let want = reference(&doc, &step1, Axis::Ancestor);
        prop_assert_eq!(step2.as_slice(), &want[..]);
    }

    #[test]
    fn parallel_equals_serial((doc, ctx) in arb_doc_and_context()) {
        let (sd, _) = descendant(&doc, &ctx, Variant::EstimationSkipping);
        let (pd, _) = descendant_parallel(&doc, &ctx, Variant::EstimationSkipping, 3);
        prop_assert_eq!(sd, pd);
        let (sa, _) = ancestor(&doc, &ctx, Variant::Skipping);
        let (pa, _) = ancestor_parallel(&doc, &ctx, Variant::Skipping, 3);
        prop_assert_eq!(sa, pa);
    }

    /// Name-test pushdown (list join) ≡ join then name test.
    #[test]
    fn pushdown_equivalence((doc, ctx) in arb_doc_and_context()) {
        let idx = TagIndex::build(&doc);
        let (full, _) = descendant(&doc, &ctx, Variant::default());
        for tag in ["p", "q"] {
            let late = full.name_test(&doc, tag);
            let (early, _) = descendant_on_list(&doc, idx.fragment_by_name(&doc, tag), &ctx);
            prop_assert_eq!(late, early, "{}", tag);
        }
    }

    /// following/preceding of a singleton partition the plane with the
    /// descendant/ancestor results.
    #[test]
    fn singleton_partitions_add_up((doc, c) in arb_doc().prop_flat_map(|d| {
        let n = d.len() as u32;
        (Just(d), 0..n)
    })) {
        let ctx = Context::singleton(c);
        let (d, _) = descendant(&doc, &ctx, Variant::default());
        let (a, _) = ancestor(&doc, &ctx, Variant::default());
        let (f, _) = following(&doc, &ctx);
        let (p, _) = preceding(&doc, &ctx);
        // Attribute-free documents here, so counts add to |doc| - 1.
        prop_assert_eq!(d.len() + a.len() + f.len() + p.len(), doc.len() - 1);
    }
}
