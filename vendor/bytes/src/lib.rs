//! Offline stand-in for the crates.io `bytes` crate.
//!
//! The build environment for this repository has no registry access, so
//! this vendor crate implements the byte-buffer API subset the `accel`
//! persistence layer uses: [`Bytes`], [`BytesMut`], and the [`Buf`] /
//! [`BufMut`] traits with little-endian accessors. No reference-counted
//! zero-copy slicing — [`Bytes`] here is an immutable `Vec<u8>`.

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts the accumulated contents into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Read access to a byte source, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing past them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"hdr!");
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(0x1234);
        buf.put_u8(7);
        let bytes = buf.freeze();
        let mut input: &[u8] = &bytes;
        assert_eq!(input.remaining(), 11);
        let mut magic = [0u8; 4];
        input.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"hdr!");
        assert_eq!(input.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(input.get_u16_le(), 0x1234);
        assert_eq!(input.get_u8(), 7);
        assert_eq!(input.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut input: &[u8] = b"ab";
        input.get_u32_le();
    }
}
