//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment for this repository has no registry access, so
//! this vendor crate implements exactly the (deterministic, seedable) API
//! subset the workspace uses: [`rngs::SmallRng`], [`SeedableRng`], and the
//! [`Rng`] methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is splitmix64-seeded xoshiro256++ — statistically solid
//! for test-data generation, *not* cryptographic. Streams are stable
//! across platforms and releases (the document generator's determinism
//! guarantee relies on this).

#![warn(missing_docs)]

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Types with a canonical "draw one" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws a value from the canonical distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's canonical distribution
    /// (`f64` ∈ [0, 1), integers over their full range, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is ≤ 2⁻⁶⁴ per
                // draw, far below what test-data generation can observe.
                let x = rng.next_u64() as u128;
                low + ((x * span) >> 64) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample(rng) * (high - low)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via splitmix64 — the stand-in for `rand`'s
    /// `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
