//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment for this repository has no registry access, so
//! this vendor crate implements the API subset the workspace's property
//! tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_flat_map`, `prop_filter`, `prop_recursive`, and `boxed`;
//! * strategies for integer/float ranges, tuples, [`Just`](strategy::Just),
//!   unions (`prop_oneof!`), [`collection::vec`], and string generation
//!   from a character-class regex subset (`"[a-z][a-z0-9_.-]{0,8}"`);
//! * the [`proptest!`] test macro with `#![proptest_config(..)]`, plus
//!   [`prop_assert!`]/[`prop_assert_eq!`].
//!
//! Failing cases **shrink**: a simple halving scheme
//! ([`strategy::Strategy::shrink`]) greedily minimises the failing input
//! — vectors lose halves, then single elements; integers halve toward
//! their range start; tuples shrink one component at a time — and the
//! test re-runs the minimal counterexample so its assertion message
//! describes the simplest failing input. What it deliberately does *not*
//! implement: persistence of failing cases. Every run is deterministic:
//! case `i` of every test samples from a fixed seed derived from `i`, so
//! failures reproduce exactly.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The usual one-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a boolean condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests.
///
/// ```ignore
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() {} // `#[test]` fns only exist under the test harness
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident
         ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            // The `#[test]` attribute is part of the user-written metas
            // (upstream proptest requires it too) — emitting another one
            // here would register every property twice.
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // All bindings sample from one tuple strategy so failing
                // inputs can shrink jointly.
                let strategies = ( $($strategy,)+ );
                let run = $crate::test_runner::typed_property(&strategies, |value| {
                    let ( $($pat,)+ ) = value;
                    ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body; }),
                    )
                });
                for case in 0..config.cases {
                    let mut runner_rng =
                        $crate::test_runner::TestRng::for_case(case as u64);
                    let value = $crate::strategy::Strategy::sample(
                        &strategies,
                        &mut runner_rng,
                    );
                    if let Err(payload) = run(::std::clone::Clone::clone(&value)) {
                        // Shrink to a minimal counterexample (silencing
                        // this thread's per-candidate panic chatter),
                        // then re-run it un-caught so the test fails
                        // with the minimal input's own assertion
                        // message.
                        let (minimal, steps) = $crate::test_runner::with_quiet_panics(|| {
                            $crate::test_runner::shrink_to_minimal(
                                &strategies,
                                value,
                                |v| run(v).is_err(),
                            )
                        });
                        eprintln!(
                            "proptest: property `{}` failed at case {} of {} \
                             (TestRng::for_case({case}) reproduces it); \
                             shrank the input {} time(s), re-running the minimal \
                             counterexample:",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            steps,
                        );
                        match run(minimal) {
                            Err(minimal_payload) => {
                                ::std::panic::resume_unwind(minimal_payload)
                            }
                            // Flaky property (fails only sometimes for
                            // the same input): fall back to the original
                            // failure.
                            Ok(()) => ::std::panic::resume_unwind(payload),
                        }
                    }
                }
            }
        )*
    };
}
