//! Deterministic per-case random source and run configuration.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the whole-workspace test run
        // fast while still exercising plenty of shapes. Tests that need
        // more override via `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// The random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// The deterministic generator for case number `case` (every run of
    /// every test uses the same stream for the same case index, so a
    /// reported failing case reproduces exactly).
    pub fn for_case(case: u64) -> TestRng {
        TestRng {
            inner: SmallRng::seed_from_u64(0xC0FF_EE00 ^ case.wrapping_mul(0x9E37_79B9)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
