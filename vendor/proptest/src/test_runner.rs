//! Deterministic per-case random source, run configuration, and the
//! shrinking driver.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::strategy::Strategy;

/// Upper bound on candidate evaluations during shrinking, so a slow
/// property cannot stall a failing test indefinitely.
const SHRINK_BUDGET: usize = 256;

/// Identity helper for the [`crate::proptest!`] macro: pins the
/// property closure's argument type to `S::Value` so pattern bindings
/// inside the body don't have to drive type inference.
pub fn typed_property<S, F>(_strategy: &S, property: F) -> F
where
    S: Strategy,
    F: Fn(S::Value) -> ::std::thread::Result<()>,
{
    property
}

thread_local! {
    /// `true` while the *current thread* is shrinking: its expected
    /// panics stay quiet without affecting other test threads.
    static QUIET: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with this thread's panic output suppressed (shrinking
/// re-runs the failing property many times; each run's panic is
/// expected noise). A delegating panic hook is installed process-wide
/// exactly once and never removed, so concurrent tests neither race on
/// the hook nor lose their own panic messages.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            QUIET.with(|q| q.set(false));
        }
    }
    let _reset = Reset;
    QUIET.with(|q| q.set(true));
    f()
}

/// Greedily minimises a failing input: repeatedly replaces it with the
/// first [`Strategy::shrink`] candidate that still fails, until no
/// candidate does (or the budget runs out). Returns the minimal failing
/// value and how many shrink steps were applied.
///
/// `is_failing` is called with owned candidates (clone-and-run), so the
/// property body may consume its input.
pub fn shrink_to_minimal<S, F>(
    strategy: &S,
    mut failing: S::Value,
    mut is_failing: F,
) -> (S::Value, usize)
where
    S: Strategy,
    S::Value: Clone,
    F: FnMut(S::Value) -> bool,
{
    let mut steps = 0;
    let mut budget = SHRINK_BUDGET;
    'outer: loop {
        for candidate in strategy.shrink(&failing) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if is_failing(candidate.clone()) {
                failing = candidate;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (failing, steps)
}

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the whole-workspace test run
        // fast while still exercising plenty of shapes. Tests that need
        // more override via `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// The random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// The deterministic generator for case number `case` (every run of
    /// every test uses the same stream for the same case index, so a
    /// reported failing case reproduces exactly).
    pub fn for_case(case: u64) -> TestRng {
        TestRng {
            inner: SmallRng::seed_from_u64(0xC0FF_EE00 ^ case.wrapping_mul(0x9E37_79B9)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
