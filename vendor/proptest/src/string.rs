//! String generation from a character-class regex subset.
//!
//! Upstream proptest interprets `&str` strategies as full regexes. This
//! stand-in supports the subset the workspace's tests use: sequences of
//! character classes with quantifiers —
//!
//! ```text
//! pattern := item+
//! item    := atom quant?
//! atom    := '[' class ']' | '.' | '\' char | char
//! class   := operand ('&&' operand)*          (operand intersection)
//! operand := '^'? (char | char '-' char | '[' class ']')+
//! quant   := '{' n (',' m)? '}' | '*' | '+' | '?'
//! ```
//!
//! e.g. `"[a-z][a-z0-9_.-]{0,8}"`, `"[ -~&&[^-]]{0,10}"`, `".{0,48}"`.

use crate::test_runner::TestRng;

/// A set of scalar values, stored as sorted disjoint inclusive ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ClassSet {
    ranges: Vec<(u32, u32)>,
}

/// Everything `char` can hold (surrogates excluded).
fn universe() -> ClassSet {
    ClassSet {
        ranges: vec![(0x0000, 0xD7FF), (0xE000, 0x10FFFF)],
    }
}

impl ClassSet {
    fn normalize(mut raw: Vec<(u32, u32)>) -> ClassSet {
        raw.retain(|&(lo, hi)| lo <= hi);
        raw.sort_unstable();
        let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(raw.len());
        for (lo, hi) in raw {
            match ranges.last_mut() {
                Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
                _ => ranges.push((lo, hi)),
            }
        }
        ClassSet { ranges }
    }

    fn single(c: char) -> ClassSet {
        ClassSet {
            ranges: vec![(c as u32, c as u32)],
        }
    }

    fn intersect(&self, other: &ClassSet) -> ClassSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (alo, ahi) = self.ranges[i];
            let (blo, bhi) = other.ranges[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        ClassSet { ranges: out }
    }

    fn negate(&self) -> ClassSet {
        universe().subtract(self)
    }

    fn subtract(&self, other: &ClassSet) -> ClassSet {
        let mut out = Vec::new();
        for &(mut lo, hi) in &self.ranges {
            for &(blo, bhi) in &other.ranges {
                if bhi < lo || blo > hi {
                    continue;
                }
                if blo > lo {
                    out.push((lo, blo - 1));
                }
                lo = bhi.saturating_add(1);
                if lo > hi {
                    break;
                }
            }
            if lo <= hi {
                out.push((lo, hi));
            }
        }
        ClassSet::normalize(out)
    }

    fn len(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as u64)
            .sum()
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        let total = self.len();
        assert!(total > 0, "cannot sample from an empty character class");
        let mut k = rng.below(total);
        for &(lo, hi) in &self.ranges {
            let span = (hi - lo + 1) as u64;
            if k < span {
                // Ranges never cross the surrogate gap (the universe is
                // split around it), so this is always a valid char.
                return char::from_u32(lo + k as u32).expect("class sets hold scalar values");
            }
            k -= span;
        }
        unreachable!("sample index within total length")
    }
}

/// One pattern item: a class repeated between `min` and `max` times
/// (inclusive).
#[derive(Debug, Clone)]
struct Item {
    class: ClassSet,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics if `pattern` uses regex features outside the supported subset;
/// the message says which construct was not understood.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let items = parse(pattern)
        .unwrap_or_else(|e| panic!("unsupported string strategy pattern {pattern:?}: {e}"));
    let mut out = String::new();
    for item in &items {
        let n = item.min + rng.below((item.max - item.min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(item.class.sample(rng));
        }
    }
    out
}

fn parse(pattern: &str) -> Result<Vec<Item>, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut items = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = match chars[i] {
            '[' => {
                let (set, ni) = parse_class(&chars, i + 1)?;
                i = ni;
                set
            }
            '.' => {
                i += 1;
                universe().subtract(&ClassSet::single('\n'))
            }
            '\\' => {
                let c = *chars.get(i + 1).ok_or("dangling escape")?;
                i += 2;
                ClassSet::single(unescape(c))
            }
            '(' | ')' | '|' | '*' | '+' | '?' | '{' | '}' | '^' | '$' => {
                return Err(format!(
                    "unsupported construct {:?} at offset {}",
                    chars[i], i
                ));
            }
            c => {
                i += 1;
                ClassSet::single(c)
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i)?;
        items.push(Item { class, min, max });
    }
    Ok(items)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

fn parse_quantifier(chars: &[char], i: &mut usize) -> Result<(usize, usize), String> {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unclosed quantifier")?
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let (lo, hi) = match body.split_once(',') {
                None => {
                    let n = body.trim().parse::<usize>().map_err(|e| e.to_string())?;
                    (n, n)
                }
                Some((lo, "")) => {
                    let lo = lo.trim().parse::<usize>().map_err(|e| e.to_string())?;
                    (lo, lo + 8)
                }
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().map_err(|e| e.to_string())?,
                    hi.trim().parse::<usize>().map_err(|e| e.to_string())?,
                ),
            };
            if lo > hi {
                return Err(format!("quantifier {{{body}}} has min > max"));
            }
            Ok((lo, hi))
        }
        Some('*') => {
            *i += 1;
            Ok((0, 8))
        }
        Some('+') => {
            *i += 1;
            Ok((1, 8))
        }
        Some('?') => {
            *i += 1;
            Ok((0, 1))
        }
        _ => Ok((1, 1)),
    }
}

/// Parses a class body starting just past `[`; returns the set and the
/// index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize) -> Result<(ClassSet, usize), String> {
    let mut acc: Option<ClassSet> = None;
    loop {
        let (operand, ni) = parse_operand(chars, i)?;
        i = ni;
        acc = Some(match acc {
            None => operand,
            Some(a) => a.intersect(&operand),
        });
        match chars.get(i) {
            Some(']') => {
                return Ok((
                    acc.unwrap_or_else(|| ClassSet::normalize(Vec::new())),
                    i + 1,
                ))
            }
            Some('&') if chars.get(i + 1) == Some(&'&') => i += 2,
            other => return Err(format!("unexpected {other:?} in character class")),
        }
    }
}

/// Parses one intersection operand; stops at `]` or `&&`.
fn parse_operand(chars: &[char], mut i: usize) -> Result<(ClassSet, usize), String> {
    if chars.get(i) == Some(&'[') {
        return parse_class(chars, i + 1);
    }
    let mut negated = false;
    if chars.get(i) == Some(&'^') {
        negated = true;
        i += 1;
    }
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    loop {
        match chars.get(i) {
            None => return Err("unclosed character class".into()),
            Some(']') => break,
            Some('&') if chars.get(i + 1) == Some(&'&') => break,
            Some('\\') => {
                let c = *chars.get(i + 1).ok_or("dangling escape in class")?;
                ranges.push((unescape(c) as u32, unescape(c) as u32));
                i += 2;
            }
            Some(&c) => {
                // `c-d` range, unless `-` is the last char before `]`/`&&`
                // (then it is a literal).
                let dash = chars.get(i + 1) == Some(&'-');
                let range_end = chars.get(i + 2).copied();
                let is_range = c != '-'
                    && dash
                    && range_end
                        .is_some_and(|e| e != ']' && !(e == '&' && chars.get(i + 3) == Some(&'&')));
                if is_range {
                    let hi = range_end.expect("checked above");
                    if (c as u32) > (hi as u32) {
                        return Err(format!("inverted range {c}-{hi}"));
                    }
                    ranges.push((c as u32, hi as u32));
                    i += 3;
                } else {
                    ranges.push((c as u32, c as u32));
                    i += 1;
                }
            }
        }
    }
    let mut set = ClassSet::normalize(ranges).intersect(&universe());
    if negated {
        set = set.negate();
    }
    Ok((set, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(11)
    }

    fn matches_all(pattern: &str, check: impl Fn(&str) -> bool) {
        let mut r = rng();
        for _ in 0..300 {
            let s = sample_pattern(pattern, &mut r);
            assert!(check(&s), "pattern {pattern:?} produced {s:?}");
        }
    }

    #[test]
    fn name_pattern() {
        matches_all("[a-z][a-z0-9_.-]{0,8}", |s| {
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            first.is_ascii_lowercase()
                && s.len() <= 9
                && cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_.-".contains(c))
        });
    }

    #[test]
    fn printable_with_unicode_extras() {
        matches_all("[ -~äöü€]{0,20}", |s| {
            s.chars().count() <= 20
                && s.chars()
                    .all(|c| (' '..='~').contains(&c) || "äöü€".contains(c))
        });
    }

    #[test]
    fn intersection_with_negation() {
        matches_all("[ -~&&[^-]]{0,10}", |s| {
            s.chars().all(|c| (' '..='~').contains(&c) && c != '-')
        });
    }

    #[test]
    fn dot_excludes_newline() {
        matches_all(".{0,48}", |s| !s.contains('\n') && s.chars().count() <= 48);
    }

    #[test]
    fn literal_and_quantifiers() {
        matches_all("ab?c*", |s| s.starts_with('a'));
        matches_all("x{3}", |s| s == "xxx");
    }

    #[test]
    fn class_with_quotes_and_amp() {
        matches_all("[ -~<>&'\"]{0,64}", |s| {
            s.chars()
                .all(|c| (' '..='~').contains(&c) || "<>&'\"".contains(c))
        });
    }

    #[test]
    fn unsupported_pattern_panics() {
        let err = std::panic::catch_unwind(|| {
            let mut r = rng();
            sample_pattern("(group)", &mut r)
        });
        assert!(err.is_err());
    }
}
