//! The [`Strategy`] trait and its combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// A strategy is a deterministic sampler over a [`TestRng`] plus an
/// optional *shrinker*: [`Strategy::shrink`] proposes strictly simpler
/// candidates for a failing value, which the [`crate::proptest!`] runner
/// uses (via [`crate::test_runner::shrink_to_minimal`]) to report a
/// minimal counterexample. Unlike upstream proptest the shrinker is a
/// simple halving scheme with no persistence.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates for `value`, most aggressive first
    /// (e.g. "halve it" before "decrement it"). Returning an empty list —
    /// the default — means the value is not shrinkable; implementations
    /// must guarantee every candidate is strictly simpler than `value`,
    /// so repeated shrinking terminates.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred`, resampling in their
    /// place. Panics (citing `reason`) if the filter rejects 1000
    /// samples in a row.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves, and
    /// `recurse` wraps an inner strategy into the next outer layer, up
    /// to `depth` layers. (`_desired_size` and `_expected_branch_size`
    /// are accepted for upstream signature compatibility; depth alone
    /// bounds recursion here.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = recurse(strategy).boxed();
        }
        strategy
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink(value)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 samples in a row: {}",
            self.reason
        );
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Shrink through the inner strategy, keeping only candidates the
        // filter would have produced.
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.pred)(v))
            .collect()
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `branches`; must be non-empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start + rng.below(span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Halve toward the range start; every candidate is
                // strictly closer to it than `value`. Widen to i128 for
                // the distance (like `sample`) so signed ranges wider
                // than the type's positive span cannot overflow.
                let mut out = Vec::new();
                if *value > self.start {
                    out.push(self.start);
                    let half = (*value as i128 - self.start as i128) / 2;
                    let mid = (self.start as i128 + half) as $t;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                    let dec = *value - 1; // > start >= MIN, cannot wrap
                    if dec != self.start && out.last() != Some(&dec) {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end as u64 - self.start as u64;
        // Resample on surrogate hits; the surrogate gap is the only
        // non-char region inside a valid char range.
        loop {
            let v = self.start as u32 + rng.below(span) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

/// A `&str` literal is interpreted as a character-class regex and
/// generates matching strings (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Shrink one component at a time, cloning the rest.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}
impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (5u32..9).sample(&mut r);
            assert!((5..9).contains(&v));
            let f = (0.0f64..1.0).sample(&mut r);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1u32..5).prop_map(|v| v * 10).prop_flat_map(|hi| 0u32..hi);
        for _ in 0..200 {
            assert!(s.sample(&mut r) < 40);
        }
    }

    #[test]
    fn filter_keeps_predicate() {
        let mut r = rng();
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..200 {
            assert_eq!(s.sample(&mut r) % 2, 0);
        }
    }

    #[test]
    fn union_hits_every_branch() {
        let mut r = rng();
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn range_shrink_halves_toward_start() {
        let s = 5u32..100;
        let candidates = s.shrink(&80);
        assert!(!candidates.is_empty());
        assert!(candidates.iter().all(|&c| (5..80).contains(&c)));
        assert_eq!(candidates[0], 5, "most aggressive candidate first");
        assert!(s.shrink(&5).is_empty(), "range start is minimal");
    }

    #[test]
    fn range_shrink_survives_full_signed_span() {
        // The distance start→value exceeds i32::MAX; shrinking must not
        // overflow (widened to i128, as sampling is).
        let s = i32::MIN..i32::MAX;
        for candidate in s.shrink(&5) {
            assert!((i32::MIN..5).contains(&candidate));
        }
        let (minimal, _) =
            crate::test_runner::shrink_to_minimal(&(i64::MIN..i64::MAX), 7, |v| v >= -3);
        assert_eq!(minimal, -3);
    }

    #[test]
    fn tuple_shrink_varies_one_component() {
        let s = (0u32..10, 0u32..10);
        let candidates = s.shrink(&(4, 7));
        assert!(!candidates.is_empty());
        for (a, b) in &candidates {
            let changed = usize::from(*a != 4) + usize::from(*b != 7);
            assert_eq!(changed, 1, "({a}, {b}) changes exactly one slot");
        }
    }

    #[test]
    fn filter_shrink_respects_predicate() {
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for c in s.shrink(&64) {
            assert_eq!(c % 2, 0);
            assert!(c < 64);
        }
    }

    #[test]
    fn shrink_to_minimal_finds_smallest_failure() {
        // Property "v < 17" fails for all v ≥ 17; the minimal failing
        // value in 0..1000 is exactly 17.
        let s = 0u32..1000;
        let (minimal, steps) = crate::test_runner::shrink_to_minimal(&s, 900, |v| v >= 17);
        assert_eq!(minimal, 17);
        assert!(steps > 0);
    }

    #[test]
    fn shrink_to_minimal_over_vecs() {
        // Failure: the vec contains an element ≥ 50. Minimal
        // counterexample: exactly one element, itself minimal (50).
        let s = crate::collection::vec(0u32..100, 0..20);
        let failing = vec![3, 72, 9, 55, 61, 2];
        let (minimal, _) =
            crate::test_runner::shrink_to_minimal(&s, failing, |v| v.iter().any(|&x| x >= 50));
        assert_eq!(minimal, vec![50]);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(Tree::Leaf)
            .prop_map(|t| t)
            .prop_recursive(3, 8, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&s.sample(&mut r)) <= 5);
        }
    }
}
