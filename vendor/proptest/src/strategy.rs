//! The [`Strategy`] trait and its combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred`, resampling in their
    /// place. Panics (citing `reason`) if the filter rejects 1000
    /// samples in a row.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves, and
    /// `recurse` wraps an inner strategy into the next outer layer, up
    /// to `depth` layers. (`_desired_size` and `_expected_branch_size`
    /// are accepted for upstream signature compatibility; depth alone
    /// bounds recursion here.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = recurse(strategy).boxed();
        }
        strategy
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 samples in a row: {}",
            self.reason
        );
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `branches`; must be non-empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end as u64 - self.start as u64;
        // Resample on surrogate hits; the surrogate gap is the only
        // non-char region inside a valid char range.
        loop {
            let v = self.start as u32 + rng.below(span) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

/// A `&str` literal is interpreted as a character-class regex and
/// generates matching strings (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (5u32..9).sample(&mut r);
            assert!((5..9).contains(&v));
            let f = (0.0f64..1.0).sample(&mut r);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1u32..5).prop_map(|v| v * 10).prop_flat_map(|hi| 0u32..hi);
        for _ in 0..200 {
            assert!(s.sample(&mut r) < 40);
        }
    }

    #[test]
    fn filter_keeps_predicate() {
        let mut r = rng();
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..200 {
            assert_eq!(s.sample(&mut r) % 2, 0);
        }
    }

    #[test]
    fn union_hits_every_branch() {
        let mut r = rng();
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(Tree::Leaf)
            .prop_map(|t| t)
            .prop_recursive(3, 8, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&s.sample(&mut r)) <= 5);
        }
    }
}
