//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        let len = value.len();
        // 1. Halve the length (keep either half), respecting the minimum.
        let half = (len / 2).max(self.size.lo);
        if half < len {
            out.push(value[..half].to_vec());
            out.push(value[len - half..].to_vec());
        }
        // 2. Drop one element at a time (bounded, front-biased: front
        //    elements usually drive generated structure).
        if len > self.size.lo {
            for i in 0..len.min(16) {
                let mut shorter = Vec::with_capacity(len - 1);
                shorter.extend_from_slice(&value[..i]);
                shorter.extend_from_slice(&value[i + 1..]);
                out.push(shorter);
            }
        }
        // 3. Shrink individual elements in place (bounded).
        for i in 0..len.min(8) {
            for candidate in self.element.shrink(&value[i]).into_iter().take(3) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_elements() {
        let s = vec(0u8..4, 2..7);
        let mut rng = TestRng::for_case(1);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn fixed_size() {
        let s = vec(0u8..2, 3);
        let mut rng = TestRng::for_case(2);
        assert_eq!(s.sample(&mut rng).len(), 3);
    }
}
