//! The failure path of the `proptest!` macro: a failing property still
//! panics (so the harness reports it), after printing which
//! deterministic case failed.

use proptest::prelude::*;

proptest! {
    #[test]
    #[should_panic(expected = "boom")]
    fn failing_property_still_panics(x in 0u32..100) {
        // Some early cases pass; a later one panics. The macro prints
        // the failing case index to stderr and re-raises the panic.
        if x > 2 {
            panic!("boom at {x}");
        }
    }

    #[test]
    fn passing_property_is_untouched(x in 0u32..100) {
        prop_assert!(x < 100);
    }
}
