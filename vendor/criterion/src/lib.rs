//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment for this repository has no registry access, so
//! this vendor crate implements the benchmarking API subset the `bench`
//! crate uses: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology is intentionally simple — warm up once, take
//! `sample_size` timed samples of an adaptively chosen iteration batch,
//! report the median — which is plenty to compare the engines this
//! repository benches against each other on one machine. It is *not* a
//! replacement for criterion's statistics when publishing numbers.
//!
//! Like the real crate, `cargo bench -- --test` runs every benchmark in
//! **smoke mode**: each closure executes exactly once, untimed — fast
//! enough for CI to catch bench bit-rot on every push without paying
//! for measurements.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// `true` when the benchmark binary was invoked with `--test` (smoke
/// mode: run everything once, measure nothing).
pub fn is_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: is_test_mode(),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
            test_mode,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("run", &mut f);
        group.finish();
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// rate reporting alongside raw times.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        if self.test_mode {
            println!("{}/{id:<32} ok (smoke: 1 iteration, untimed)", self.name);
            return;
        }
        let mut samples = bencher.samples.clone();
        if samples.is_empty() {
            println!("{}/{id:<32} (no samples)", self.name);
            return;
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  {:>10.1} MB/s", b as f64 / median / 1e6)
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.2} Melem/s", n as f64 / median / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{}/{id:<32} median {:>12}{rate}   ({} samples)",
            self.name,
            format_seconds(median),
            samples.len()
        );
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Measures `f`, recording `sample_size` samples — or, in smoke
    /// mode, runs it exactly once.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm-up + batch sizing: aim for ≥ ~1 ms per timed sample so
        // short closures aren't dominated by timer resolution.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_secs_f64();
        let batch = if once > 0.0 {
            (1e-3 / once).ceil().clamp(1.0, 1e4) as u32
        } else {
            10_000
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is just a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Work performed by one iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn smoke_mode_runs_each_closure_exactly_once() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("smoke-mode");
        g.sample_size(10);
        let mut runs = 0u32;
        g.bench_function("once", |b| {
            b.iter(|| runs += 1);
        });
        g.finish();
        // Not sample_size × batch — exactly one untimed execution.
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 2.5).to_string(), "f/2.5");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
